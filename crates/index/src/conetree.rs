//! The utility index UI: a cone tree over sampled utility vectors.
//!
//! FD-RMS maintains the ε-approximate top-k of `M` fixed utility vectors.
//! When a tuple `p` is inserted, the vectors whose result changes are
//! exactly those with `⟨u, p⟩ ≥ τ_u`, where `τ_u = (1 − ε)·ω_k(u, P)` is
//! the per-vector admission threshold. Scanning all `M` vectors per
//! insertion is the brute-force alternative (see the `ablation_dualtree`
//! bench); the cone tree prunes whole clusters of vectors using the
//! maximum-inner-product bound of Ram & Gray (KDD 2012):
//!
//! ```text
//! max_{u ∈ cone(c, φ)} ⟨u, p⟩ ≤ ‖p‖ · cos(max(0, θ(c, p) − φ))
//! ```
//!
//! where `c` is the cone's unit centre and `φ` its half-angle. A subtree
//! can be skipped when this bound is below the *minimum* threshold stored
//! in the subtree.

use rms_geom::{Point, Utility};

/// Leaf capacity of the cone tree.
const LEAF_CAPACITY: usize = 16;

#[derive(Debug, Clone)]
enum Node {
    Internal {
        /// Unit-norm centre of the cone.
        center: Box<[f64]>,
        /// cos of the cone half-angle (cosine is cheaper than the angle).
        cos_half_angle: f64,
        /// Minimum threshold over the subtree's vectors.
        min_threshold: f64,
        left: usize,
        right: usize,
        parent: Option<usize>,
    },
    Leaf {
        center: Box<[f64]>,
        cos_half_angle: f64,
        min_threshold: f64,
        /// Indices into the utility pool.
        members: Vec<usize>,
        parent: Option<usize>,
    },
}

impl Node {
    fn min_threshold(&self) -> f64 {
        match self {
            Node::Internal { min_threshold, .. } | Node::Leaf { min_threshold, .. } => {
                *min_threshold
            }
        }
    }
    fn set_min_threshold(&mut self, v: f64) {
        match self {
            Node::Internal { min_threshold, .. } | Node::Leaf { min_threshold, .. } => {
                *min_threshold = v;
            }
        }
    }
    fn parent(&self) -> Option<usize> {
        match self {
            Node::Internal { parent, .. } | Node::Leaf { parent, .. } => *parent,
        }
    }
}

/// A cone tree over a fixed pool of utility vectors with per-vector
/// thresholds.
#[derive(Debug, Clone)]
pub struct ConeTree {
    utilities: Vec<Utility>,
    thresholds: Vec<f64>,
    /// Leaf node holding each utility.
    leaf_of: Vec<usize>,
    nodes: Vec<Node>,
    root: usize,
}

impl ConeTree {
    /// Builds the tree over `utilities` with all thresholds set to
    /// `+∞` (no vector reports as affected until its threshold is set).
    ///
    /// Panics when `utilities` is empty or dimensionalities disagree.
    pub fn build(utilities: Vec<Utility>) -> Self {
        assert!(!utilities.is_empty(), "cone tree needs at least one vector");
        let d = utilities[0].dim();
        assert!(
            utilities.iter().all(|u| u.dim() == d),
            "mixed dimensionality"
        );
        let mut tree = Self {
            thresholds: vec![f64::INFINITY; utilities.len()],
            leaf_of: vec![usize::MAX; utilities.len()],
            utilities,
            nodes: Vec::new(),
            root: 0,
        };
        let all: Vec<usize> = (0..tree.utilities.len()).collect();
        tree.root = tree.build_rec(all, None);
        for (idx, node) in tree.nodes.iter().enumerate() {
            if let Node::Leaf { members, .. } = node {
                for &m in members {
                    tree.leaf_of[m] = idx;
                }
            }
        }
        tree
    }

    /// Number of indexed vectors.
    pub fn len(&self) -> usize {
        self.utilities.len()
    }

    /// `true` when the pool is empty (cannot happen post-build).
    pub fn is_empty(&self) -> bool {
        self.utilities.is_empty()
    }

    /// The utility vector at `idx`.
    pub fn utility(&self, idx: usize) -> &Utility {
        &self.utilities[idx]
    }

    /// The current threshold of vector `idx`.
    pub fn threshold(&self, idx: usize) -> f64 {
        self.thresholds[idx]
    }

    fn build_rec(&mut self, members: Vec<usize>, parent: Option<usize>) -> usize {
        let (center, cos_half_angle) = self.cone_of(&members);
        if members.len() <= LEAF_CAPACITY {
            self.nodes.push(Node::Leaf {
                center,
                cos_half_angle,
                min_threshold: f64::INFINITY,
                members,
                parent,
            });
            return self.nodes.len() - 1;
        }
        // Two-pivot angular split (Ram & Gray): pick the vector farthest
        // from an arbitrary seed, then the vector farthest from it; assign
        // members to the closer pivot by cosine.
        let seed = members[0];
        let a = *members
            .iter()
            .max_by(|&&x, &&y| {
                let cx = self.utilities[seed].cosine(&self.utilities[x]);
                let cy = self.utilities[seed].cosine(&self.utilities[y]);
                cy.partial_cmp(&cx).expect("finite") // farthest = min cosine
            })
            .expect("nonempty");
        let b = *members
            .iter()
            .max_by(|&&x, &&y| {
                let cx = self.utilities[a].cosine(&self.utilities[x]);
                let cy = self.utilities[a].cosine(&self.utilities[y]);
                cy.partial_cmp(&cx).expect("finite")
            })
            .expect("nonempty");
        let mut left_members = Vec::new();
        let mut right_members = Vec::new();
        for &m in &members {
            let ca = self.utilities[a].cosine(&self.utilities[m]);
            let cb = self.utilities[b].cosine(&self.utilities[m]);
            if ca >= cb {
                left_members.push(m);
            } else {
                right_members.push(m);
            }
        }
        // Degenerate split (all vectors identical): force a half split so
        // recursion terminates.
        if left_members.is_empty() || right_members.is_empty() {
            let mut all = members;
            let mid = all.len() / 2;
            right_members = all.split_off(mid);
            left_members = all;
        }
        let placeholder = self.nodes.len();
        self.nodes.push(Node::Internal {
            center,
            cos_half_angle,
            min_threshold: f64::INFINITY,
            left: usize::MAX,
            right: usize::MAX,
            parent,
        });
        let l = self.build_rec(left_members, Some(placeholder));
        let r = self.build_rec(right_members, Some(placeholder));
        if let Node::Internal { left, right, .. } = &mut self.nodes[placeholder] {
            *left = l;
            *right = r;
        }
        placeholder
    }

    /// Computes the unit centre (normalised mean) and cos of the
    /// half-angle covering `members`.
    fn cone_of(&self, members: &[usize]) -> (Box<[f64]>, f64) {
        let d = self.utilities[0].dim();
        let mut center = vec![0.0f64; d];
        for &m in members {
            for (c, w) in center.iter_mut().zip(self.utilities[m].weights()) {
                *c += w;
            }
        }
        let norm = center.iter().map(|c| c * c).sum::<f64>().sqrt();
        if norm > f64::EPSILON {
            for c in &mut center {
                *c /= norm;
            }
        } else if !center.is_empty() {
            center[0] = 1.0;
        }
        let mut cos_half = 1.0f64;
        for &m in members {
            let cos = center
                .iter()
                .zip(self.utilities[m].weights())
                .map(|(c, w)| c * w)
                .sum::<f64>()
                .clamp(-1.0, 1.0);
            cos_half = cos_half.min(cos);
        }
        (center.into_boxed_slice(), cos_half)
    }

    /// Sets the threshold of vector `idx` and repairs the subtree minima
    /// along the path to the root.
    pub fn set_threshold(&mut self, idx: usize, tau: f64) {
        self.thresholds[idx] = tau;
        let mut node = Some(self.leaf_of[idx]);
        while let Some(n) = node {
            let new_min = match &self.nodes[n] {
                Node::Leaf { members, .. } => members
                    .iter()
                    .map(|&m| self.thresholds[m])
                    .fold(f64::INFINITY, f64::min),
                Node::Internal { left, right, .. } => self.nodes[*left]
                    .min_threshold()
                    .min(self.nodes[*right].min_threshold()),
            };
            if (new_min - self.nodes[n].min_threshold()).abs() == 0.0 {
                // Unchanged minimum: ancestors cannot change either, but
                // only if the stored value already matched. Cheap early
                // exit for the common case of a non-minimal leaf update.
                self.nodes[n].set_min_threshold(new_min);
                node = self.nodes[n].parent();
                continue;
            }
            self.nodes[n].set_min_threshold(new_min);
            node = self.nodes[n].parent();
        }
    }

    /// Sets many thresholds at once and repairs every subtree minimum in a
    /// single bottom-up sweep (`O(M)` instead of one root path per
    /// update). Used by the batch update engine, which rewrites the
    /// thresholds of every affected utility once per batch.
    pub fn set_thresholds(&mut self, updates: impl IntoIterator<Item = (usize, f64)>) {
        let mut any = false;
        for (idx, tau) in updates {
            self.thresholds[idx] = tau;
            any = true;
        }
        if !any {
            return;
        }
        // Children always carry larger node indices than their parent
        // (internal nodes are pushed as placeholders before recursing), so
        // one reverse pass recomputes every minimum bottom-up.
        for n in (0..self.nodes.len()).rev() {
            let new_min = match &self.nodes[n] {
                Node::Leaf { members, .. } => members
                    .iter()
                    .map(|&m| self.thresholds[m])
                    .fold(f64::INFINITY, f64::min),
                Node::Internal { left, right, .. } => self.nodes[*left]
                    .min_threshold()
                    .min(self.nodes[*right].min_threshold()),
            };
            self.nodes[n].set_min_threshold(new_min);
        }
    }

    /// Upper bound of `⟨u, p⟩` over a cone with the given centre and cos
    /// half-angle.
    ///
    /// Evaluates `cos(θ − φ)` through the angle-difference identity
    /// `cosθ·cosφ + sinθ·sinφ` with `sin x = √(1 − cos²x)` (both angles
    /// lie in `[0, π]`, where sine is nonnegative), so the hot path costs
    /// two `sqrt`s instead of an `acos` + `cos` pair. The `θ ≤ φ` branch
    /// becomes the equivalent cosine comparison `cosθ ≥ cosφ` (cosine is
    /// decreasing on `[0, π]`).
    fn cone_bound(center: &[f64], cos_half: f64, p: &Point, p_norm: f64) -> f64 {
        if p_norm <= f64::EPSILON {
            return 0.0;
        }
        let cos_cp = center
            .iter()
            .zip(p.coords())
            .map(|(c, x)| c * x)
            .sum::<f64>()
            / p_norm;
        let cos_cp = cos_cp.clamp(-1.0, 1.0);
        let cos_half = cos_half.clamp(-1.0, 1.0);
        if cos_cp >= cos_half {
            p_norm
        } else {
            let sin_cp = (1.0 - cos_cp * cos_cp).max(0.0).sqrt();
            let sin_half = (1.0 - cos_half * cos_half).max(0.0).sqrt();
            p_norm * (cos_cp * cos_half + sin_cp * sin_half)
        }
    }

    /// Returns every vector index `i` with `⟨u_i, p⟩ ≥ τ_i` — the vectors
    /// whose ε-approximate top-k result admits the newly inserted tuple.
    /// Exact scores are checked at the leaves; internal cones are pruned
    /// by the inner-product bound against the subtree's minimum threshold.
    pub fn affected_by(&self, p: &Point) -> Vec<usize> {
        let mut out = Vec::new();
        let p_norm = p.norm();
        let mut stack = vec![self.root];
        while let Some(n) = stack.pop() {
            match &self.nodes[n] {
                Node::Internal {
                    center,
                    cos_half_angle,
                    min_threshold,
                    left,
                    right,
                    ..
                } => {
                    if Self::cone_bound(center, *cos_half_angle, p, p_norm) >= *min_threshold {
                        stack.push(*left);
                        stack.push(*right);
                    }
                }
                Node::Leaf {
                    center,
                    cos_half_angle,
                    min_threshold,
                    members,
                    ..
                } => {
                    if Self::cone_bound(center, *cos_half_angle, p, p_norm) < *min_threshold {
                        continue;
                    }
                    for &m in members {
                        if self.utilities[m].score(p) >= self.thresholds[m] {
                            out.push(m);
                        }
                    }
                }
            }
        }
        out.sort_unstable();
        out
    }

    /// The union of [`ConeTree::affected_by`] over a batch of tuples, in
    /// one traversal: a subtree is pruned only when *no* tuple in the
    /// batch can reach its minimum threshold, so shared cones are visited
    /// once instead of once per tuple. Returns sorted, deduplicated
    /// utility indices.
    pub fn affected_by_batch<'a, I>(&self, points: I) -> Vec<usize>
    where
        I: IntoIterator<Item = &'a Point>,
    {
        self.affected_hits_batch(points)
            .into_iter()
            .map(|(m, _)| m)
            .collect()
    }

    /// Like [`ConeTree::affected_by_batch`], but reports *which* tuples
    /// reach each utility's threshold: for every affected utility index
    /// `m` (ascending), the indices (into the input order) of the tuples
    /// with `⟨u_m, p⟩ ≥ τ_m`, via one joint traversal.
    ///
    /// The joint traversal only wins when the tuples are tightly
    /// clustered (shared cones get visited once); for spread-out batches
    /// prefer [`ConeTree::affected_hits_many`] — the per-tuple variant
    /// the batch update engine uses — whose pruning stays per-tuple
    /// tight.
    pub fn affected_hits_batch<'a, I>(&self, points: I) -> Vec<(usize, Vec<usize>)>
    where
        I: IntoIterator<Item = &'a Point>,
    {
        let pts: Vec<(&Point, f64)> = points.into_iter().map(|p| (p, p.norm())).collect();
        let mut out = Vec::new();
        if pts.is_empty() {
            return out;
        }
        let mut stack = vec![self.root];
        while let Some(n) = stack.pop() {
            match &self.nodes[n] {
                Node::Internal {
                    center,
                    cos_half_angle,
                    min_threshold,
                    left,
                    right,
                    ..
                } => {
                    if pts.iter().any(|&(p, norm)| {
                        Self::cone_bound(center, *cos_half_angle, p, norm) >= *min_threshold
                    }) {
                        stack.push(*left);
                        stack.push(*right);
                    }
                }
                Node::Leaf {
                    center,
                    cos_half_angle,
                    min_threshold,
                    members,
                    ..
                } => {
                    if pts.iter().all(|&(p, norm)| {
                        Self::cone_bound(center, *cos_half_angle, p, norm) < *min_threshold
                    }) {
                        continue;
                    }
                    for &m in members {
                        let hits: Vec<usize> = pts
                            .iter()
                            .enumerate()
                            .filter(|(_, (p, _))| self.utilities[m].score(p) >= self.thresholds[m])
                            .map(|(i, _)| i)
                            .collect();
                        if !hits.is_empty() {
                            out.push((m, hits));
                        }
                    }
                }
            }
        }
        out.sort_unstable_by_key(|&(m, _)| m);
        out
    }

    /// Per-utility hit lists for a batch of tuples, via one *individually
    /// pruned* traversal per tuple (sharing the traversal stack): for
    /// every utility some tuple reaches, the indices (into the input
    /// order) of the tuples with `⟨u_m, p⟩ ≥ τ_m`, keyed by ascending
    /// utility index.
    ///
    /// Prefer this over [`ConeTree::affected_hits_batch`] when the tuples
    /// are spread out: a joint traversal can only prune a cone that *no*
    /// tuple reaches, so diverse batches degrade it towards a full scan,
    /// while per-tuple traversals keep the threshold pruning intact.
    pub fn affected_hits_many<'a, I>(&self, points: I) -> Vec<(usize, Vec<usize>)>
    where
        I: IntoIterator<Item = &'a Point>,
    {
        let mut hits: std::collections::BTreeMap<usize, Vec<usize>> =
            std::collections::BTreeMap::new();
        let mut stack = Vec::new();
        for (pi, p) in points.into_iter().enumerate() {
            let p_norm = p.norm();
            stack.clear();
            stack.push(self.root);
            while let Some(n) = stack.pop() {
                match &self.nodes[n] {
                    Node::Internal {
                        center,
                        cos_half_angle,
                        min_threshold,
                        left,
                        right,
                        ..
                    } => {
                        if Self::cone_bound(center, *cos_half_angle, p, p_norm) >= *min_threshold {
                            stack.push(*left);
                            stack.push(*right);
                        }
                    }
                    Node::Leaf {
                        center,
                        cos_half_angle,
                        min_threshold,
                        members,
                        ..
                    } => {
                        if Self::cone_bound(center, *cos_half_angle, p, p_norm) < *min_threshold {
                            continue;
                        }
                        for &m in members {
                            if self.utilities[m].score(p) >= self.thresholds[m] {
                                hits.entry(m).or_default().push(pi);
                            }
                        }
                    }
                }
            }
        }
        hits.into_iter().collect()
    }

    /// Brute-force reference for [`ConeTree::affected_by`]; public for the
    /// ablation bench and tests.
    pub fn affected_by_scan(&self, p: &Point) -> Vec<usize> {
        (0..self.utilities.len())
            .filter(|&i| self.utilities[i].score(p) >= self.thresholds[i])
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, Rng, SeedableRng};
    use rms_geom::sample_utilities;

    fn tree_with_thresholds(seed: u64, d: usize, m: usize) -> (ConeTree, StdRng) {
        let mut rng = StdRng::seed_from_u64(seed);
        let us = sample_utilities(&mut rng, d, m);
        let mut tree = ConeTree::build(us);
        for i in 0..m {
            let tau: f64 = rng.gen_range(0.3..1.2);
            tree.set_threshold(i, tau);
        }
        (tree, rng)
    }

    #[test]
    fn affected_matches_scan() {
        let (tree, mut rng) = tree_with_thresholds(1, 4, 300);
        for _ in 0..50 {
            let p = Point::new_unchecked(0, (0..4).map(|_| rng.gen()).collect());
            assert_eq!(tree.affected_by(&p), tree.affected_by_scan(&p));
        }
    }

    #[test]
    fn affected_after_threshold_updates() {
        let (mut tree, mut rng) = tree_with_thresholds(2, 3, 200);
        for step in 0..200 {
            let i = rng.gen_range(0..tree.len());
            tree.set_threshold(i, rng.gen_range(0.1..1.5));
            if step % 10 == 0 {
                let p = Point::new_unchecked(0, (0..3).map(|_| rng.gen()).collect());
                assert_eq!(tree.affected_by(&p), tree.affected_by_scan(&p));
            }
        }
    }

    #[test]
    fn batch_affected_matches_union_of_singles() {
        let (tree, mut rng) = tree_with_thresholds(11, 4, 300);
        for batch_size in [1usize, 2, 7, 20] {
            let pts: Vec<Point> = (0..batch_size)
                .map(|i| Point::new_unchecked(i as u64, (0..4).map(|_| rng.gen()).collect()))
                .collect();
            let mut want: Vec<usize> = pts.iter().flat_map(|p| tree.affected_by(p)).collect();
            want.sort_unstable();
            want.dedup();
            assert_eq!(
                tree.affected_by_batch(pts.iter()),
                want,
                "size {batch_size}"
            );
            // The per-point traversal variant agrees exactly, per utility.
            let many = tree.affected_hits_many(pts.iter());
            assert_eq!(many.iter().map(|(m, _)| *m).collect::<Vec<_>>(), want);
            for (m, hit_idxs) in many {
                let from_singles: Vec<usize> = pts
                    .iter()
                    .enumerate()
                    .filter(|(_, p)| tree.affected_by(p).contains(&m))
                    .map(|(i, _)| i)
                    .collect();
                assert_eq!(hit_idxs, from_singles, "utility {m}");
            }
        }
        assert!(tree.affected_by_batch(std::iter::empty()).is_empty());
        assert!(tree.affected_hits_many(std::iter::empty()).is_empty());
    }

    #[test]
    fn bulk_thresholds_match_incremental() {
        let (mut bulk, mut rng) = tree_with_thresholds(12, 3, 200);
        let mut incr = bulk.clone();
        let updates: Vec<(usize, f64)> = (0..80)
            .map(|_| (rng.gen_range(0..200), rng.gen_range(0.1..1.4)))
            .collect();
        for &(i, tau) in &updates {
            incr.set_threshold(i, tau);
        }
        bulk.set_thresholds(updates.iter().copied());
        for _ in 0..30 {
            let p = Point::new_unchecked(0, (0..3).map(|_| rng.gen()).collect());
            assert_eq!(bulk.affected_by(&p), incr.affected_by(&p));
            assert_eq!(bulk.affected_by(&p), bulk.affected_by_scan(&p));
        }
        // Empty update set is a no-op.
        let before: Vec<f64> = (0..bulk.len()).map(|i| bulk.threshold(i)).collect();
        bulk.set_thresholds(std::iter::empty());
        let after: Vec<f64> = (0..bulk.len()).map(|i| bulk.threshold(i)).collect();
        assert_eq!(before, after);
    }

    #[test]
    fn infinite_thresholds_report_nothing() {
        let mut rng = StdRng::seed_from_u64(3);
        let us = sample_utilities(&mut rng, 3, 64);
        let tree = ConeTree::build(us);
        let p = Point::new_unchecked(0, vec![1.0, 1.0, 1.0]);
        assert!(tree.affected_by(&p).is_empty());
    }

    #[test]
    fn zero_thresholds_report_everything() {
        let mut rng = StdRng::seed_from_u64(4);
        let us = sample_utilities(&mut rng, 3, 64);
        let mut tree = ConeTree::build(us);
        for i in 0..tree.len() {
            tree.set_threshold(i, 0.0);
        }
        let p = Point::new_unchecked(0, vec![0.5, 0.5, 0.5]);
        assert_eq!(tree.affected_by(&p).len(), 64);
    }

    #[test]
    fn cone_bound_is_sound() {
        // For every node the bound must dominate every member's score.
        let mut rng = StdRng::seed_from_u64(5);
        let us = sample_utilities(&mut rng, 5, 128);
        let tree = ConeTree::build(us.clone());
        for _ in 0..20 {
            let p = Point::new_unchecked(0, (0..5).map(|_| rng.gen()).collect());
            let p_norm = p.norm();
            for node in &tree.nodes {
                let (center, cos_half, members): (&[f64], f64, Vec<usize>) = match node {
                    Node::Leaf {
                        center,
                        cos_half_angle,
                        members,
                        ..
                    } => (center, *cos_half_angle, members.clone()),
                    Node::Internal {
                        center,
                        cos_half_angle,
                        ..
                    } => (center, *cos_half_angle, Vec::new()),
                };
                let bound = ConeTree::cone_bound(center, cos_half, &p, p_norm);
                for m in members {
                    assert!(
                        us[m].score(&p) <= bound + 1e-9,
                        "member {m} exceeds its cone bound"
                    );
                }
            }
        }
    }

    #[test]
    fn single_vector_tree() {
        let u = Utility::new(vec![0.6, 0.8]).unwrap();
        let mut tree = ConeTree::build(vec![u]);
        tree.set_threshold(0, 0.5);
        let hit = Point::new_unchecked(0, vec![1.0, 1.0]);
        let miss = Point::new_unchecked(1, vec![0.1, 0.1]);
        assert_eq!(tree.affected_by(&hit), vec![0]);
        assert!(tree.affected_by(&miss).is_empty());
    }

    #[test]
    fn identical_vectors_split_terminates() {
        let us: Vec<Utility> = (0..100)
            .map(|_| Utility::new(vec![1.0, 1.0]).unwrap())
            .collect();
        let mut tree = ConeTree::build(us);
        for i in 0..100 {
            tree.set_threshold(i, 0.1);
        }
        let p = Point::new_unchecked(0, vec![0.5, 0.5]);
        assert_eq!(tree.affected_by(&p).len(), 100);
    }

    #[test]
    #[should_panic(expected = "at least one vector")]
    fn empty_pool_panics() {
        let _ = ConeTree::build(Vec::new());
    }

    mod bound_props {
        use super::*;
        use proptest::prelude::*;

        /// The pre-optimisation `acos`-based bound, kept as the reference
        /// the `sqrt` identity in [`ConeTree::cone_bound`] must reproduce.
        fn acos_bound(center: &[f64], cos_half: f64, p: &Point, p_norm: f64) -> f64 {
            if p_norm <= f64::EPSILON {
                return 0.0;
            }
            let cos_cp = center
                .iter()
                .zip(p.coords())
                .map(|(c, x)| c * x)
                .sum::<f64>()
                / p_norm;
            let cos_cp = cos_cp.clamp(-1.0, 1.0);
            let theta = cos_cp.acos();
            let phi = cos_half.clamp(-1.0, 1.0).acos();
            if theta <= phi {
                p_norm
            } else {
                p_norm * (theta - phi).cos()
            }
        }

        fn unit_vector(d: usize) -> impl Strategy<Value = Vec<f64>> {
            prop::collection::vec(0.01f64..=1.0, d).prop_map(|mut v| {
                let norm = v.iter().map(|x| x * x).sum::<f64>().sqrt();
                for x in &mut v {
                    *x /= norm;
                }
                v
            })
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(64))]

            /// The sqrt identity agrees with the acos formula to fp noise,
            /// and — the property the index actually relies on — every
            /// prune/descend decision against a threshold is identical.
            #[test]
            fn sqrt_identity_prunes_like_acos(
                center in unit_vector(4),
                cos_half in -1.0f64..=1.0,
                coords in prop::collection::vec(0.0f64..=1.0, 4),
                tau in 0.0f64..=1.5,
            ) {
                let p = Point::new_unchecked(0, coords);
                let p_norm = p.norm();
                let fast = ConeTree::cone_bound(&center, cos_half, &p, p_norm);
                let slow = acos_bound(&center, cos_half, &p, p_norm);
                prop_assert!((fast - slow).abs() <= 1e-9, "fast {fast} vs acos {slow}");
                prop_assert_eq!(fast >= tau, slow >= tau, "pruning decision diverged at τ={}", tau);
            }

            /// End to end: with the sqrt bound in place, the pruned
            /// traversal still reports exactly the brute-force affected
            /// set for arbitrary threshold assignments.
            #[test]
            fn affected_by_matches_scan_under_sqrt_bound(
                seed in 0u64..1_000,
                taus in prop::collection::vec(0.0f64..=1.4, 64),
                coords in prop::collection::vec(0.0f64..=1.0, 3),
            ) {
                let mut rng = StdRng::seed_from_u64(seed);
                let us = sample_utilities(&mut rng, 3, taus.len());
                let mut tree = ConeTree::build(us);
                for (i, tau) in taus.iter().enumerate() {
                    tree.set_threshold(i, *tau);
                }
                let p = Point::new_unchecked(0, coords);
                prop_assert_eq!(tree.affected_by(&p), tree.affected_by_scan(&p));
            }
        }
    }
}
