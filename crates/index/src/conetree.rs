//! The utility index UI: a cone tree over sampled utility vectors.
//!
//! FD-RMS maintains the ε-approximate top-k of `M` fixed utility vectors.
//! When a tuple `p` is inserted, the vectors whose result changes are
//! exactly those with `⟨u, p⟩ ≥ τ_u`, where `τ_u = (1 − ε)·ω_k(u, P)` is
//! the per-vector admission threshold. Scanning all `M` vectors per
//! insertion is the brute-force alternative (see the `ablation_dualtree`
//! bench); the cone tree prunes whole clusters of vectors using the
//! maximum-inner-product bound of Ram & Gray (KDD 2012):
//!
//! ```text
//! max_{u ∈ cone(c, φ)} ⟨u, p⟩ ≤ ‖p‖ · cos(max(0, θ(c, p) − φ))
//! ```
//!
//! where `c` is the cone's unit centre and `φ` its half-angle. A subtree
//! can be skipped when this bound is below the *minimum* threshold stored
//! in the subtree.
//!
//! The tree is stored as parallel flat arrays (struct-of-arrays): cone
//! centres pack into one `f64` array at `node·dim`, scalar node fields
//! into their own `Vec`s, and leaf membership into a single member-order
//! block whose utility weights and thresholds are duplicated contiguously
//! (`packed_weights` / `packed_thresholds`) so a leaf scan is one
//! straight-line sweep with no per-member indirection. Parents always
//! precede their children in node order, which is what lets
//! [`ConeTree::set_thresholds`] repair every subtree minimum in a single
//! reverse pass.

use crate::kernels::dot;
use rms_geom::{Point, Utility};

/// Leaf capacity of the cone tree.
const LEAF_CAPACITY: usize = 16;

/// Node-index sentinel: marks a leaf (in `left`/`right`) or the root (in
/// `parent`).
const NO_NODE: u32 = u32::MAX;

/// A cone tree over a fixed pool of utility vectors with per-vector
/// thresholds.
#[derive(Debug, Clone)]
pub struct ConeTree {
    utilities: Vec<Utility>,
    thresholds: Vec<f64>,
    dim: usize,
    /// Leaf node holding each utility.
    leaf_of: Vec<usize>,
    /// Packed member slot of each utility (index into `members` /
    /// `packed_weights` / `packed_thresholds`).
    slot_of: Vec<usize>,
    // Per-node arrays, indexed by node id. Parents precede children.
    /// Unit-norm cone centres, packed at `node·dim .. (node+1)·dim`.
    centers: Vec<f64>,
    /// cos of each cone's half-angle (cosine is cheaper than the angle).
    cos_half: Vec<f64>,
    /// Minimum threshold over each subtree's vectors.
    min_threshold: Vec<f64>,
    /// Child indices; `left == NO_NODE` marks a leaf.
    left: Vec<u32>,
    right: Vec<u32>,
    /// Parent index; `NO_NODE` at the root.
    parent: Vec<u32>,
    /// Leaf member range `member_start[n] .. member_start[n] + member_len[n]`
    /// into the packed member block (empty for internal nodes).
    member_start: Vec<u32>,
    member_len: Vec<u32>,
    // Leaf payload in member order: utility indices plus their weights and
    // thresholds duplicated contiguously for the scan kernel.
    members: Vec<u32>,
    packed_weights: Vec<f64>,
    packed_thresholds: Vec<f64>,
    root: usize,
}

impl ConeTree {
    /// Builds the tree over `utilities` with all thresholds set to
    /// `+∞` (no vector reports as affected until its threshold is set).
    ///
    /// Panics when `utilities` is empty or dimensionalities disagree.
    pub fn build(utilities: Vec<Utility>) -> Self {
        assert!(!utilities.is_empty(), "cone tree needs at least one vector");
        let d = utilities[0].dim();
        assert!(
            utilities.iter().all(|u| u.dim() == d),
            "mixed dimensionality"
        );
        let m = utilities.len();
        let mut tree = Self {
            thresholds: vec![f64::INFINITY; m],
            dim: d,
            leaf_of: vec![usize::MAX; m],
            slot_of: vec![usize::MAX; m],
            utilities,
            centers: Vec::new(),
            cos_half: Vec::new(),
            min_threshold: Vec::new(),
            left: Vec::new(),
            right: Vec::new(),
            parent: Vec::new(),
            member_start: Vec::new(),
            member_len: Vec::new(),
            members: Vec::with_capacity(m),
            packed_weights: Vec::with_capacity(m * d),
            packed_thresholds: Vec::with_capacity(m),
            root: 0,
        };
        let all: Vec<usize> = (0..m).collect();
        tree.root = tree.build_rec(all, NO_NODE);
        tree
    }

    /// Number of indexed vectors.
    pub fn len(&self) -> usize {
        self.utilities.len()
    }

    /// `true` when the pool is empty (cannot happen post-build).
    pub fn is_empty(&self) -> bool {
        self.utilities.is_empty()
    }

    /// The utility vector at `idx`.
    pub fn utility(&self, idx: usize) -> &Utility {
        &self.utilities[idx]
    }

    /// The current threshold of vector `idx`.
    pub fn threshold(&self, idx: usize) -> f64 {
        self.thresholds[idx]
    }

    #[inline]
    fn num_nodes(&self) -> usize {
        self.left.len()
    }

    #[inline]
    fn is_leaf(&self, n: usize) -> bool {
        self.left[n] == NO_NODE
    }

    #[inline]
    fn center_of(&self, n: usize) -> &[f64] {
        &self.centers[n * self.dim..(n + 1) * self.dim]
    }

    #[inline]
    fn member_range(&self, n: usize) -> std::ops::Range<usize> {
        let start = self.member_start[n] as usize;
        start..start + self.member_len[n] as usize
    }

    /// Minimum packed threshold over a leaf's member block.
    #[inline]
    fn leaf_min(&self, n: usize) -> f64 {
        self.packed_thresholds[self.member_range(n)]
            .iter()
            .copied()
            .fold(f64::INFINITY, f64::min)
    }

    /// Appends a node with empty children/members and returns its index.
    fn push_node(&mut self, center: &[f64], cos_half: f64, parent: u32) -> usize {
        let idx = self.num_nodes();
        self.centers.extend_from_slice(center);
        self.cos_half.push(cos_half);
        self.min_threshold.push(f64::INFINITY);
        self.left.push(NO_NODE);
        self.right.push(NO_NODE);
        self.parent.push(parent);
        self.member_start.push(self.members.len() as u32);
        self.member_len.push(0);
        idx
    }

    /// Appends a leaf owning `mem`, packing each member's weights and
    /// threshold into the contiguous leaf block.
    fn push_leaf(&mut self, mem: &[usize], center: &[f64], cos_half: f64, parent: u32) -> usize {
        let idx = self.push_node(center, cos_half, parent);
        self.member_len[idx] = mem.len() as u32;
        for &m in mem {
            let slot = self.members.len();
            self.members.push(m as u32);
            self.slot_of[m] = slot;
            self.leaf_of[m] = idx;
            self.packed_weights
                .extend_from_slice(self.utilities[m].weights());
            self.packed_thresholds.push(self.thresholds[m]);
        }
        idx
    }

    fn build_rec(&mut self, members: Vec<usize>, parent: u32) -> usize {
        let (center, cos_half_angle) = self.cone_of(&members);
        if members.len() <= LEAF_CAPACITY {
            return self.push_leaf(&members, &center, cos_half_angle, parent);
        }
        // Two-pivot angular split (Ram & Gray): pick the vector farthest
        // from an arbitrary seed, then the vector farthest from it; assign
        // members to the closer pivot by cosine.
        let seed = members[0];
        let a = *members
            .iter()
            .max_by(|&&x, &&y| {
                let cx = self.utilities[seed].cosine(&self.utilities[x]);
                let cy = self.utilities[seed].cosine(&self.utilities[y]);
                cy.partial_cmp(&cx).expect("finite") // farthest = min cosine
            })
            .expect("nonempty");
        let b = *members
            .iter()
            .max_by(|&&x, &&y| {
                let cx = self.utilities[a].cosine(&self.utilities[x]);
                let cy = self.utilities[a].cosine(&self.utilities[y]);
                cy.partial_cmp(&cx).expect("finite")
            })
            .expect("nonempty");
        let mut left_members = Vec::new();
        let mut right_members = Vec::new();
        for &m in &members {
            let ca = self.utilities[a].cosine(&self.utilities[m]);
            let cb = self.utilities[b].cosine(&self.utilities[m]);
            if ca >= cb {
                left_members.push(m);
            } else {
                right_members.push(m);
            }
        }
        // Degenerate split (all vectors identical): force a half split so
        // recursion terminates.
        if left_members.is_empty() || right_members.is_empty() {
            let mut all = members;
            let mid = all.len() / 2;
            right_members = all.split_off(mid);
            left_members = all;
        }
        // Push the internal node before recursing so parents always carry
        // smaller indices than their children; children get patched in.
        let placeholder = self.push_node(&center, cos_half_angle, parent);
        let l = self.build_rec(left_members, placeholder as u32);
        let r = self.build_rec(right_members, placeholder as u32);
        self.left[placeholder] = l as u32;
        self.right[placeholder] = r as u32;
        placeholder
    }

    /// Computes the unit centre (normalised mean) and cos of the
    /// half-angle covering `members`.
    fn cone_of(&self, members: &[usize]) -> (Vec<f64>, f64) {
        let d = self.dim;
        let mut center = vec![0.0f64; d];
        for &m in members {
            for (c, w) in center.iter_mut().zip(self.utilities[m].weights()) {
                *c += w;
            }
        }
        let norm = center.iter().map(|c| c * c).sum::<f64>().sqrt();
        if norm > f64::EPSILON {
            for c in &mut center {
                *c /= norm;
            }
        } else if !center.is_empty() {
            center[0] = 1.0;
        }
        let mut cos_half = 1.0f64;
        for &m in members {
            let cos = dot(&center, self.utilities[m].weights()).clamp(-1.0, 1.0);
            cos_half = cos_half.min(cos);
        }
        (center, cos_half)
    }

    /// Sets the threshold of vector `idx` and repairs the subtree minima
    /// along the path to the root.
    pub fn set_threshold(&mut self, idx: usize, tau: f64) {
        self.thresholds[idx] = tau;
        self.packed_thresholds[self.slot_of[idx]] = tau;
        let mut node = self.leaf_of[idx];
        loop {
            self.min_threshold[node] = if self.is_leaf(node) {
                self.leaf_min(node)
            } else {
                self.min_threshold[self.left[node] as usize]
                    .min(self.min_threshold[self.right[node] as usize])
            };
            if self.parent[node] == NO_NODE {
                break;
            }
            node = self.parent[node] as usize;
        }
    }

    /// Sets many thresholds at once and repairs every subtree minimum in a
    /// single bottom-up sweep (`O(M)` instead of one root path per
    /// update). Used by the batch update engine, which rewrites the
    /// thresholds of every affected utility once per batch.
    pub fn set_thresholds(&mut self, updates: impl IntoIterator<Item = (usize, f64)>) {
        let mut any = false;
        for (idx, tau) in updates {
            self.thresholds[idx] = tau;
            self.packed_thresholds[self.slot_of[idx]] = tau;
            any = true;
        }
        if !any {
            return;
        }
        // Children always carry larger node indices than their parent
        // (internal nodes are pushed as placeholders before recursing), so
        // one reverse pass recomputes every minimum bottom-up.
        for n in (0..self.num_nodes()).rev() {
            self.min_threshold[n] = if self.is_leaf(n) {
                self.leaf_min(n)
            } else {
                self.min_threshold[self.left[n] as usize]
                    .min(self.min_threshold[self.right[n] as usize])
            };
        }
    }

    /// Upper bound of `⟨u, p⟩` over a cone with the given centre and cos
    /// half-angle.
    ///
    /// Evaluates `cos(θ − φ)` through the angle-difference identity
    /// `cosθ·cosφ + sinθ·sinφ` with `sin x = √(1 − cos²x)` (both angles
    /// lie in `[0, π]`, where sine is nonnegative), so the hot path costs
    /// two `sqrt`s instead of an `acos` + `cos` pair. The `θ ≤ φ` branch
    /// becomes the equivalent cosine comparison `cosθ ≥ cosφ` (cosine is
    /// decreasing on `[0, π]`).
    fn cone_bound(center: &[f64], cos_half: f64, p: &Point, p_norm: f64) -> f64 {
        if p_norm <= f64::EPSILON {
            return 0.0;
        }
        let cos_cp = (dot(center, p.coords()) / p_norm).clamp(-1.0, 1.0);
        let cos_half = cos_half.clamp(-1.0, 1.0);
        if cos_cp >= cos_half {
            p_norm
        } else {
            let sin_cp = (1.0 - cos_cp * cos_cp).max(0.0).sqrt();
            let sin_half = (1.0 - cos_half * cos_half).max(0.0).sqrt();
            p_norm * (cos_cp * cos_half + sin_cp * sin_half)
        }
    }

    /// The cone bound of node `n` against `p`.
    #[inline]
    fn node_bound(&self, n: usize, p: &Point, p_norm: f64) -> f64 {
        Self::cone_bound(self.center_of(n), self.cos_half[n], p, p_norm)
    }

    /// Scans a leaf's packed member block, appending every member whose
    /// exact score reaches its threshold.
    #[inline]
    fn scan_leaf(&self, n: usize, p: &Point, out: &mut Vec<usize>) {
        let coords = p.coords();
        for slot in self.member_range(n) {
            let w = &self.packed_weights[slot * self.dim..(slot + 1) * self.dim];
            if dot(w, coords) >= self.packed_thresholds[slot] {
                out.push(self.members[slot] as usize);
            }
        }
    }

    /// Returns every vector index `i` with `⟨u_i, p⟩ ≥ τ_i` — the vectors
    /// whose ε-approximate top-k result admits the newly inserted tuple.
    /// Exact scores are checked at the leaves; internal cones are pruned
    /// by the inner-product bound against the subtree's minimum threshold.
    pub fn affected_by(&self, p: &Point) -> Vec<usize> {
        let mut out = Vec::new();
        let p_norm = p.norm();
        let mut stack = vec![self.root];
        while let Some(n) = stack.pop() {
            if self.node_bound(n, p, p_norm) < self.min_threshold[n] {
                continue;
            }
            if self.is_leaf(n) {
                self.scan_leaf(n, p, &mut out);
            } else {
                stack.push(self.left[n] as usize);
                stack.push(self.right[n] as usize);
            }
        }
        out.sort_unstable();
        out
    }

    /// The union of [`ConeTree::affected_by`] over a batch of tuples, in
    /// one traversal: a subtree is pruned only when *no* tuple in the
    /// batch can reach its minimum threshold, so shared cones are visited
    /// once instead of once per tuple. Returns sorted, deduplicated
    /// utility indices.
    pub fn affected_by_batch<'a, I>(&self, points: I) -> Vec<usize>
    where
        I: IntoIterator<Item = &'a Point>,
    {
        self.affected_hits_batch(points)
            .into_iter()
            .map(|(m, _)| m)
            .collect()
    }

    /// Like [`ConeTree::affected_by_batch`], but reports *which* tuples
    /// reach each utility's threshold: for every affected utility index
    /// `m` (ascending), the indices (into the input order) of the tuples
    /// with `⟨u_m, p⟩ ≥ τ_m`, via one joint traversal.
    ///
    /// The joint traversal only wins when the tuples are tightly
    /// clustered (shared cones get visited once); for spread-out batches
    /// prefer [`ConeTree::affected_hits_many`] — the per-tuple variant
    /// the batch update engine uses — whose pruning stays per-tuple
    /// tight.
    pub fn affected_hits_batch<'a, I>(&self, points: I) -> Vec<(usize, Vec<usize>)>
    where
        I: IntoIterator<Item = &'a Point>,
    {
        let pts: Vec<(&Point, f64)> = points.into_iter().map(|p| (p, p.norm())).collect();
        let mut out = Vec::new();
        if pts.is_empty() {
            return out;
        }
        let mut stack = vec![self.root];
        while let Some(n) = stack.pop() {
            if pts
                .iter()
                .all(|&(p, norm)| self.node_bound(n, p, norm) < self.min_threshold[n])
            {
                continue;
            }
            if !self.is_leaf(n) {
                stack.push(self.left[n] as usize);
                stack.push(self.right[n] as usize);
                continue;
            }
            for slot in self.member_range(n) {
                let w = &self.packed_weights[slot * self.dim..(slot + 1) * self.dim];
                let tau = self.packed_thresholds[slot];
                let hits: Vec<usize> = pts
                    .iter()
                    .enumerate()
                    .filter(|(_, (p, _))| dot(w, p.coords()) >= tau)
                    .map(|(i, _)| i)
                    .collect();
                if !hits.is_empty() {
                    out.push((self.members[slot] as usize, hits));
                }
            }
        }
        out.sort_unstable_by_key(|&(m, _)| m);
        out
    }

    /// Per-utility hit lists for a batch of tuples, via one *individually
    /// pruned* traversal per tuple (sharing the traversal stack): for
    /// every utility some tuple reaches, the indices (into the input
    /// order) of the tuples with `⟨u_m, p⟩ ≥ τ_m`, keyed by ascending
    /// utility index.
    ///
    /// Prefer this over [`ConeTree::affected_hits_batch`] when the tuples
    /// are spread out: a joint traversal can only prune a cone that *no*
    /// tuple reaches, so diverse batches degrade it towards a full scan,
    /// while per-tuple traversals keep the threshold pruning intact.
    pub fn affected_hits_many<'a, I>(&self, points: I) -> Vec<(usize, Vec<usize>)>
    where
        I: IntoIterator<Item = &'a Point>,
    {
        let mut hits: std::collections::BTreeMap<usize, Vec<usize>> =
            std::collections::BTreeMap::new();
        let mut stack = Vec::new();
        for (pi, p) in points.into_iter().enumerate() {
            let p_norm = p.norm();
            stack.clear();
            stack.push(self.root);
            while let Some(n) = stack.pop() {
                if self.node_bound(n, p, p_norm) < self.min_threshold[n] {
                    continue;
                }
                if !self.is_leaf(n) {
                    stack.push(self.left[n] as usize);
                    stack.push(self.right[n] as usize);
                    continue;
                }
                let coords = p.coords();
                for slot in self.member_range(n) {
                    let w = &self.packed_weights[slot * self.dim..(slot + 1) * self.dim];
                    if dot(w, coords) >= self.packed_thresholds[slot] {
                        hits.entry(self.members[slot] as usize)
                            .or_default()
                            .push(pi);
                    }
                }
            }
        }
        hits.into_iter().collect()
    }

    /// Brute-force reference for [`ConeTree::affected_by`]; public for the
    /// ablation bench and tests.
    pub fn affected_by_scan(&self, p: &Point) -> Vec<usize> {
        (0..self.utilities.len())
            .filter(|&i| self.utilities[i].score(p) >= self.thresholds[i])
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, Rng, SeedableRng};
    use rms_geom::sample_utilities;

    fn tree_with_thresholds(seed: u64, d: usize, m: usize) -> (ConeTree, StdRng) {
        let mut rng = StdRng::seed_from_u64(seed);
        let us = sample_utilities(&mut rng, d, m);
        let mut tree = ConeTree::build(us);
        for i in 0..m {
            let tau: f64 = rng.gen_range(0.3..1.2);
            tree.set_threshold(i, tau);
        }
        (tree, rng)
    }

    #[test]
    fn affected_matches_scan() {
        let (tree, mut rng) = tree_with_thresholds(1, 4, 300);
        for _ in 0..50 {
            let p = Point::new_unchecked(0, (0..4).map(|_| rng.gen()).collect());
            assert_eq!(tree.affected_by(&p), tree.affected_by_scan(&p));
        }
    }

    #[test]
    fn affected_after_threshold_updates() {
        let (mut tree, mut rng) = tree_with_thresholds(2, 3, 200);
        for step in 0..200 {
            let i = rng.gen_range(0..tree.len());
            tree.set_threshold(i, rng.gen_range(0.1..1.5));
            if step % 10 == 0 {
                let p = Point::new_unchecked(0, (0..3).map(|_| rng.gen()).collect());
                assert_eq!(tree.affected_by(&p), tree.affected_by_scan(&p));
            }
        }
    }

    #[test]
    fn batch_affected_matches_union_of_singles() {
        let (tree, mut rng) = tree_with_thresholds(11, 4, 300);
        for batch_size in [1usize, 2, 7, 20] {
            let pts: Vec<Point> = (0..batch_size)
                .map(|i| Point::new_unchecked(i as u64, (0..4).map(|_| rng.gen()).collect()))
                .collect();
            let mut want: Vec<usize> = pts.iter().flat_map(|p| tree.affected_by(p)).collect();
            want.sort_unstable();
            want.dedup();
            assert_eq!(
                tree.affected_by_batch(pts.iter()),
                want,
                "size {batch_size}"
            );
            // The per-point traversal variant agrees exactly, per utility.
            let many = tree.affected_hits_many(pts.iter());
            assert_eq!(many.iter().map(|(m, _)| *m).collect::<Vec<_>>(), want);
            for (m, hit_idxs) in many {
                let from_singles: Vec<usize> = pts
                    .iter()
                    .enumerate()
                    .filter(|(_, p)| tree.affected_by(p).contains(&m))
                    .map(|(i, _)| i)
                    .collect();
                assert_eq!(hit_idxs, from_singles, "utility {m}");
            }
        }
        assert!(tree.affected_by_batch(std::iter::empty()).is_empty());
        assert!(tree.affected_hits_many(std::iter::empty()).is_empty());
    }

    #[test]
    fn bulk_thresholds_match_incremental() {
        let (mut bulk, mut rng) = tree_with_thresholds(12, 3, 200);
        let mut incr = bulk.clone();
        let updates: Vec<(usize, f64)> = (0..80)
            .map(|_| (rng.gen_range(0..200), rng.gen_range(0.1..1.4)))
            .collect();
        for &(i, tau) in &updates {
            incr.set_threshold(i, tau);
        }
        bulk.set_thresholds(updates.iter().copied());
        for _ in 0..30 {
            let p = Point::new_unchecked(0, (0..3).map(|_| rng.gen()).collect());
            assert_eq!(bulk.affected_by(&p), incr.affected_by(&p));
            assert_eq!(bulk.affected_by(&p), bulk.affected_by_scan(&p));
        }
        // Empty update set is a no-op.
        let before: Vec<f64> = (0..bulk.len()).map(|i| bulk.threshold(i)).collect();
        bulk.set_thresholds(std::iter::empty());
        let after: Vec<f64> = (0..bulk.len()).map(|i| bulk.threshold(i)).collect();
        assert_eq!(before, after);
    }

    #[test]
    fn infinite_thresholds_report_nothing() {
        let mut rng = StdRng::seed_from_u64(3);
        let us = sample_utilities(&mut rng, 3, 64);
        let tree = ConeTree::build(us);
        let p = Point::new_unchecked(0, vec![1.0, 1.0, 1.0]);
        assert!(tree.affected_by(&p).is_empty());
    }

    #[test]
    fn zero_thresholds_report_everything() {
        let mut rng = StdRng::seed_from_u64(4);
        let us = sample_utilities(&mut rng, 3, 64);
        let mut tree = ConeTree::build(us);
        for i in 0..tree.len() {
            tree.set_threshold(i, 0.0);
        }
        let p = Point::new_unchecked(0, vec![0.5, 0.5, 0.5]);
        assert_eq!(tree.affected_by(&p).len(), 64);
    }

    #[test]
    fn cone_bound_is_sound() {
        // For every node the bound must dominate every member's score
        // (leaf member ranges are empty for internal nodes).
        let mut rng = StdRng::seed_from_u64(5);
        let us = sample_utilities(&mut rng, 5, 128);
        let tree = ConeTree::build(us.clone());
        for _ in 0..20 {
            let p = Point::new_unchecked(0, (0..5).map(|_| rng.gen()).collect());
            let p_norm = p.norm();
            for n in 0..tree.num_nodes() {
                let bound = tree.node_bound(n, &p, p_norm);
                for slot in tree.member_range(n) {
                    let m = tree.members[slot] as usize;
                    assert!(
                        us[m].score(&p) <= bound + 1e-9,
                        "member {m} exceeds its cone bound"
                    );
                }
            }
        }
    }

    #[test]
    fn packed_leaf_blocks_mirror_pool() {
        // The flat layout invariants: every utility appears in exactly one
        // leaf slot, its packed weights/threshold mirror the pool, and
        // parents precede children.
        let (tree, _) = tree_with_thresholds(21, 4, 300);
        assert_eq!(tree.members.len(), tree.len());
        for idx in 0..tree.len() {
            let slot = tree.slot_of[idx];
            assert_eq!(tree.members[slot] as usize, idx);
            assert!(tree.member_range(tree.leaf_of[idx]).contains(&slot));
            assert_eq!(
                &tree.packed_weights[slot * tree.dim..(slot + 1) * tree.dim],
                tree.utility(idx).weights()
            );
            assert_eq!(tree.packed_thresholds[slot], tree.threshold(idx));
        }
        for n in 0..tree.num_nodes() {
            if !tree.is_leaf(n) {
                assert!(tree.left[n] as usize > n && tree.right[n] as usize > n);
            }
        }
    }

    #[test]
    fn single_vector_tree() {
        let u = Utility::new(vec![0.6, 0.8]).unwrap();
        let mut tree = ConeTree::build(vec![u]);
        tree.set_threshold(0, 0.5);
        let hit = Point::new_unchecked(0, vec![1.0, 1.0]);
        let miss = Point::new_unchecked(1, vec![0.1, 0.1]);
        assert_eq!(tree.affected_by(&hit), vec![0]);
        assert!(tree.affected_by(&miss).is_empty());
    }

    #[test]
    fn identical_vectors_split_terminates() {
        let us: Vec<Utility> = (0..100)
            .map(|_| Utility::new(vec![1.0, 1.0]).unwrap())
            .collect();
        let mut tree = ConeTree::build(us);
        for i in 0..100 {
            tree.set_threshold(i, 0.1);
        }
        let p = Point::new_unchecked(0, vec![0.5, 0.5]);
        assert_eq!(tree.affected_by(&p).len(), 100);
    }

    #[test]
    #[should_panic(expected = "at least one vector")]
    fn empty_pool_panics() {
        let _ = ConeTree::build(Vec::new());
    }

    mod bound_props {
        use super::*;
        use proptest::prelude::*;

        /// The pre-optimisation `acos`-based bound, kept as the reference
        /// the `sqrt` identity in [`ConeTree::cone_bound`] must reproduce.
        fn acos_bound(center: &[f64], cos_half: f64, p: &Point, p_norm: f64) -> f64 {
            if p_norm <= f64::EPSILON {
                return 0.0;
            }
            let cos_cp = center
                .iter()
                .zip(p.coords())
                .map(|(c, x)| c * x)
                .sum::<f64>()
                / p_norm;
            let cos_cp = cos_cp.clamp(-1.0, 1.0);
            let theta = cos_cp.acos();
            let phi = cos_half.clamp(-1.0, 1.0).acos();
            if theta <= phi {
                p_norm
            } else {
                p_norm * (theta - phi).cos()
            }
        }

        fn unit_vector(d: usize) -> impl Strategy<Value = Vec<f64>> {
            prop::collection::vec(0.01f64..=1.0, d).prop_map(|mut v| {
                let norm = v.iter().map(|x| x * x).sum::<f64>().sqrt();
                for x in &mut v {
                    *x /= norm;
                }
                v
            })
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(64))]

            /// The sqrt identity agrees with the acos formula to fp noise,
            /// and — the property the index actually relies on — every
            /// prune/descend decision against a threshold is identical.
            #[test]
            fn sqrt_identity_prunes_like_acos(
                center in unit_vector(4),
                cos_half in -1.0f64..=1.0,
                coords in prop::collection::vec(0.0f64..=1.0, 4),
                tau in 0.0f64..=1.5,
            ) {
                let p = Point::new_unchecked(0, coords);
                let p_norm = p.norm();
                let fast = ConeTree::cone_bound(&center, cos_half, &p, p_norm);
                let slow = acos_bound(&center, cos_half, &p, p_norm);
                prop_assert!((fast - slow).abs() <= 1e-9, "fast {fast} vs acos {slow}");
                prop_assert_eq!(fast >= tau, slow >= tau, "pruning decision diverged at τ={}", tau);
            }

            /// End to end: with the sqrt bound in place, the pruned
            /// traversal still reports exactly the brute-force affected
            /// set for arbitrary threshold assignments.
            #[test]
            fn affected_by_matches_scan_under_sqrt_bound(
                seed in 0u64..1_000,
                taus in prop::collection::vec(0.0f64..=1.4, 64),
                coords in prop::collection::vec(0.0f64..=1.0, 3),
            ) {
                let mut rng = StdRng::seed_from_u64(seed);
                let us = sample_utilities(&mut rng, 3, taus.len());
                let mut tree = ConeTree::build(us);
                for (i, tau) in taus.iter().enumerate() {
                    tree.set_threshold(i, *tau);
                }
                let p = Point::new_unchecked(0, coords);
                prop_assert_eq!(tree.affected_by(&p), tree.affected_by_scan(&p));
            }
        }
    }
}
