//! Intraprocedural dataflow over the block tree: guard-lifetime
//! tracking through nested scopes, `drop()` and shadowing; channel-type
//! classification (so an unbounded `Sender::send` is not a blocking
//! call); a one-level call graph per file with a fixpoint-computed
//! may-block set; and, across files, a fixpoint may-acquire set feeding
//! the global lock-acquisition-order graph behind the `lock-order`
//! rule.
//!
//! Precision posture, in line with the rest of the analyzer: token- and
//! scope-level reasoning, no types beyond name matching. The call graph
//! is by simple function name (all same-named functions merge), guard
//! liveness is tracked only for `let`-bound guards, and lock identity
//! is the field/path name the guard call is invoked on (`self.slot
//! .read()` and `cell.slot.read()` are the same lock `slot`). Each
//! approximation trades false negatives it cannot afford into false
//! positives a pragma can absorb — except self-edges (`a` → `a`),
//! which are dropped: same-name locks on *different* instances (shard
//! loops) are routine, and flagging them would drown the signal.

use crate::lexer::{Tok, Token};
use crate::parse::{self, BlockTree};
use crate::rules::{
    call_of, guard_acquisition, ident, punct, Finding, BLOCKING_CALLS, GUARD_CALLS, RULE_GUARD,
    RULE_LOCKORDER, RULE_REACTOR,
};
use std::collections::{BTreeMap, BTreeSet};
use std::path::{Path, PathBuf};

/// How a channel endpoint behaves on `.send(…)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Chan {
    /// `std::sync::mpsc::Sender` — send enqueues without blocking.
    Unbounded,
    /// `SyncSender` (or unknown) — send may block on a full queue.
    Bounded,
}

/// File-level channel typing: names with a `Sender`/`SyncSender` type
/// ascription anywhere (struct fields, parameters, `let` ascriptions),
/// plus tuple-variant/tuple-struct names wrapping an unbounded sender
/// (destructuring such a variant binds an unbounded sender).
struct FileSenders {
    names: BTreeMap<String, Chan>,
    variants: BTreeSet<String>,
}

/// Scans `name: …type…` ascriptions and `Variant(Sender<…>)`
/// declarations. A name typed both ways in one file degrades to
/// `Bounded` (conservative: its sends count as blocking).
fn classify_senders(toks: &[Token]) -> FileSenders {
    let mut names: BTreeMap<String, Chan> = BTreeMap::new();
    let mut variants = BTreeSet::new();
    let mut i = 0;
    while i < toks.len() {
        let Some(name) = ident(toks.get(i)) else {
            i += 1;
            continue;
        };
        // `name : Type` (not `::`): classify the type region up to the
        // next `,`/`;`/`)`/`}`/`{`/`=` at zero paren/bracket nesting.
        if punct(toks.get(i + 1), ':')
            && !punct(toks.get(i + 2), ':')
            && !punct(toks.get(i.wrapping_sub(1)), ':')
        {
            let mut j = i + 2;
            let mut nest = 0i32;
            let mut kind: Option<Chan> = None;
            while j < toks.len() {
                match &toks[j].tok {
                    Tok::Punct('(' | '[') => nest += 1,
                    Tok::Punct(')' | ']') if nest == 0 => break,
                    Tok::Punct(')' | ']') => nest -= 1,
                    Tok::Punct(',' | ';' | '{' | '}' | '=') if nest == 0 => break,
                    Tok::Ident(t) if t == "SyncSender" => kind = Some(Chan::Bounded),
                    Tok::Ident(t) if t == "Sender" && kind.is_none() => {
                        kind = Some(Chan::Unbounded);
                    }
                    _ => {}
                }
                j += 1;
            }
            if let Some(k) = kind {
                names
                    .entry(name.to_string())
                    .and_modify(|old| {
                        if *old != k {
                            *old = Chan::Bounded;
                        }
                    })
                    .or_insert(k);
            }
        }
        // `Variant(…Sender<…>…)` declaration (tuple variant or tuple
        // struct): destructuring `Variant(tx)` binds an unbounded `tx`.
        if name.starts_with(char::is_uppercase) && punct(toks.get(i + 1), '(') {
            let mut j = i + 2;
            let mut nest = 1i32;
            let mut saw_sender = false;
            let mut saw_sync = false;
            while j < toks.len() && nest > 0 {
                match &toks[j].tok {
                    Tok::Punct('(') => nest += 1,
                    Tok::Punct(')') => nest -= 1,
                    Tok::Ident(t) if t == "Sender" => saw_sender = true,
                    Tok::Ident(t) if t == "SyncSender" => saw_sync = true,
                    _ => {}
                }
                j += 1;
            }
            if saw_sender && !saw_sync {
                variants.insert(name.to_string());
            }
        }
        i += 1;
    }
    FileSenders { names, variants }
}

/// A live `let`-bound lock guard.
struct Guard {
    name: String,
    lock: String,
    depth: u32,
    line: u32,
}

/// A scoped channel binding introduced by a pattern or `let`.
struct Bind {
    name: String,
    depth: u32,
    chan: Chan,
}

/// One lock-order edge: a guard of `from` was live while `to` was
/// acquired (directly, or inside a called function `via`).
#[derive(Debug, Clone)]
pub(crate) struct Edge {
    pub from: String,
    pub from_line: u32,
    pub to: String,
    pub to_line: u32,
    pub via: Option<String>,
    pub file: PathBuf,
}

/// Everything one pass over a function body produces. The summary
/// fields (`blocked`, `acquires`, `calls`) feed the fixpoints; findings
/// and edges are only meaningful once the fixpoint context is supplied.
#[derive(Default)]
struct WalkOut {
    findings: Vec<Finding>,
    edges: Vec<Edge>,
    blocked: bool,
    acquires: Vec<(String, u32)>,
    calls: Vec<(String, u32)>,
}

/// Per-lock acquisition provenance inside the may-acquire fixpoint.
type AcquireSet = BTreeMap<String, u32>;

/// The function list [`file_ctx`] returns: `(index into
/// tree.functions, body token span)` per analyzable function.
type FnBodies = Vec<(usize, (usize, usize))>;

/// One function's first-pass summary: `(name, blocks directly, calls)`.
type CallSummary = (String, bool, Vec<(String, u32)>);

/// Context shared by every walk over one file.
struct FileCtx<'a> {
    file: &'a Path,
    toks: &'a [Token],
    senders: &'a FileSenders,
    /// `fn`-keyword token index → body-end token index, for skipping
    /// nested function items while walking an enclosing body.
    fn_spans: BTreeMap<usize, usize>,
    /// Names of functions defined in this file (the r1 call graph) —
    /// or, for lock-order, in the whole file set.
    local_fns: BTreeSet<String>,
}

/// Walks one function body. `may_block` names local functions whose
/// call counts as a blocking site; `may_acquire` maps function names to
/// the locks they (transitively) acquire.
#[allow(clippy::too_many_lines)]
fn walk_function(
    ctx: &FileCtx<'_>,
    f: &parse::Function,
    body: (usize, usize),
    may_block: &BTreeSet<String>,
    may_acquire: &BTreeMap<String, AcquireSet>,
) -> WalkOut {
    let toks = ctx.toks;
    let mut out = WalkOut::default();
    let mut guards: Vec<Guard> = Vec::new();
    let mut binds: Vec<Bind> = Vec::new();
    let mut depth = 0u32;

    // Parameters bind at depth 0 of the body.
    let mut p = f.params.0;
    while p < f.params.1 {
        if let Some(name) = ident(toks.get(p)) {
            if punct(toks.get(p + 1), ':') && !punct(toks.get(p + 2), ':') {
                let mut j = p + 2;
                let mut nest = 0i32;
                let mut kind = None;
                while j < f.params.1 {
                    match &toks[j].tok {
                        Tok::Punct('(' | '[' | '<') => nest += 1,
                        Tok::Punct(')' | ']' | '>') => nest -= 1,
                        Tok::Punct(',') if nest <= 0 => break,
                        Tok::Ident(t) if t == "SyncSender" => kind = Some(Chan::Bounded),
                        Tok::Ident(t) if t == "Sender" && kind.is_none() => {
                            kind = Some(Chan::Unbounded);
                        }
                        _ => {}
                    }
                    j += 1;
                }
                if let Some(chan) = kind {
                    binds.push(Bind {
                        name: name.to_string(),
                        depth: 0,
                        chan,
                    });
                }
                p = j;
                continue;
            }
        }
        p += 1;
    }

    let mut i = body.0;
    while i < body.1.min(toks.len()) {
        if toks[i].in_test {
            i += 1;
            continue;
        }
        match &toks[i].tok {
            Tok::Punct('{') => depth += 1,
            Tok::Punct('}') => {
                depth = depth.saturating_sub(1);
                guards.retain(|g| g.depth <= depth);
                binds.retain(|b| b.depth <= depth);
            }
            Tok::Ident(kw) if kw == "fn" && ident(toks.get(i + 1)).is_some() => {
                // A nested `fn` item: analyzed on its own, skip it here.
                if let Some(&end) = ctx.fn_spans.get(&i) {
                    i = end + 1;
                    continue;
                }
            }
            Tok::Ident(kw) if kw == "drop" && punct(toks.get(i + 1), '(') => {
                if let Some(name) = ident(toks.get(i + 2)) {
                    if punct(toks.get(i + 3), ')') {
                        guards.retain(|g| g.name != name);
                    }
                }
            }
            Tok::Ident(kw) if kw == "let" => {
                i = walk_let(
                    ctx,
                    i,
                    depth,
                    &mut guards,
                    &mut binds,
                    may_block,
                    may_acquire,
                    &mut out,
                );
                continue;
            }
            Tok::Ident(v) if ctx.senders.variants.contains(v) && punct(toks.get(i + 1), '(') => {
                // `Variant(tx)` — constructing or destructuring an
                // unbounded-sender wrapper; either way `tx` is one.
                let mut j = i + 2;
                let mut nest = 1i32;
                while j < toks.len() && nest > 0 {
                    match &toks[j].tok {
                        Tok::Punct('(') => nest += 1,
                        Tok::Punct(')') => nest -= 1,
                        Tok::Ident(name) if nest == 1 => binds.push(Bind {
                            name: name.clone(),
                            depth,
                            chan: Chan::Unbounded,
                        }),
                        _ => {}
                    }
                    j += 1;
                }
            }
            _ => {
                visit_site(ctx, i, &guards, &binds, may_block, may_acquire, &mut out);
            }
        }
        i += 1;
    }
    out
}

/// Handles one `let` statement: binds guards and channel endpoints,
/// visits the initializer's call sites, and returns the resume index.
#[allow(clippy::too_many_arguments)]
fn walk_let(
    ctx: &FileCtx<'_>,
    start: usize,
    depth: u32,
    guards: &mut Vec<Guard>,
    binds: &mut Vec<Bind>,
    may_block: &BTreeSet<String>,
    may_acquire: &BTreeMap<String, AcquireSet>,
    out: &mut WalkOut,
) -> usize {
    let toks = ctx.toks;
    // Pattern: up to `=` at zero nesting. The bound name is the last
    // identifier before any type ascription (`let mut g`, `let Ok(g)`,
    // `let g: T`); tuple patterns additionally record their first
    // element (the sender half of a `channel()` destructure).
    let mut i = start + 1;
    let mut nest = 0i32;
    let mut name: Option<(String, u32)> = None;
    let mut tuple_first: Option<String> = None;
    let is_tuple = punct(toks.get(i), '(');
    let mut saw_colon = false;
    while i < toks.len() {
        match &toks[i].tok {
            Tok::Punct('(' | '[') => nest += 1,
            Tok::Punct(')' | ']') => nest -= 1,
            Tok::Punct(':') if nest == 0 => saw_colon = true,
            Tok::Punct('=') if nest == 0 => break,
            Tok::Punct(';') if nest == 0 => return i,
            Tok::Punct('{') => return i,
            Tok::Ident(id) if !saw_colon && id != "mut" && id != "ref" => {
                name = Some((id.clone(), toks[i].line));
                if is_tuple && tuple_first.is_none() {
                    tuple_first = Some(id.clone());
                }
            }
            _ => {}
        }
        i += 1;
    }
    // A `let x: Sender<…> = …` ascription classifies the binding.
    if saw_colon {
        let mut j = start + 1;
        let mut kind = None;
        while j < i {
            match &toks[j].tok {
                Tok::Ident(t) if t == "SyncSender" => kind = Some(Chan::Bounded),
                Tok::Ident(t) if t == "Sender" && kind.is_none() => kind = Some(Chan::Unbounded),
                _ => {}
            }
            j += 1;
        }
        if let (Some(chan), Some((n, _))) = (kind, &name) {
            binds.push(Bind {
                name: n.clone(),
                depth,
                chan,
            });
        }
    }
    // Initializer: to `;` or `{` at zero nesting, visiting call sites
    // under the guards live *before* this statement completes.
    let mut acquired: Option<(String, u32)> = None;
    let mut acq_nest = 0i32;
    let mut consumed = false;
    let mut made_channel: Option<Chan> = None;
    let mut j = i + 1;
    let mut inest = 0i32;
    while j < toks.len() {
        match &toks[j].tok {
            Tok::Punct('(' | '[') => inest += 1,
            Tok::Punct(')' | ']') => inest -= 1,
            Tok::Punct(';') if inest == 0 => break,
            Tok::Punct('{') if inest == 0 => break,
            Tok::Ident(c)
                if c == "channel" && punct(toks.get(j + 1), '(') && punct(toks.get(j + 2), ')') =>
            {
                made_channel = Some(Chan::Unbounded);
            }
            Tok::Ident(c) if c == "sync_channel" && punct(toks.get(j + 1), '(') => {
                made_channel = Some(Chan::Bounded);
            }
            _ => {}
        }
        if guard_acquisition(toks, j) && acquired.is_none() {
            if let Some((lock, line)) = lock_receiver(toks, j) {
                acquired = Some((lock, line));
                acq_nest = inest;
            }
        } else if acquired.is_some()
            && !consumed
            && inest <= acq_nest
            && punct(toks.get(j), '.')
            && punct(toks.get(j + 2), '(')
        {
            // A postfix method call on the acquisition chain at (or
            // outside) the acquisition's nesting level: the guard is a
            // temporary consumed inside this statement
            // (`….lock()).sync_handle().ok()` binds a file, not a
            // guard). The poison-unwrap family is exempt — those return
            // the guard itself.
            if let Some(m) = ident(toks.get(j + 1)) {
                if !matches!(m, "unwrap" | "expect" | "unwrap_or_else") {
                    consumed = true;
                }
            }
        }
        visit_site(ctx, j, guards, binds, may_block, may_acquire, out);
        j += 1;
    }
    if let (Some(chan), Some(first)) = (made_channel, tuple_first) {
        binds.push(Bind {
            name: first,
            depth,
            chan,
        });
    }
    if let Some((lock, line)) = acquired {
        if let (Some((name, _)), false) = (name, consumed) {
            guards.push(Guard {
                name,
                lock,
                depth,
                line,
            });
        }
    }
    j
}

/// Visits one token position for call-shaped events: blocking calls
/// (r1 findings + may-block summary), direct guard acquisitions
/// (lock-order edges + may-acquire summary), and local-function calls
/// (both fixpoints).
fn visit_site(
    ctx: &FileCtx<'_>,
    i: usize,
    guards: &[Guard],
    binds: &[Bind],
    may_block: &BTreeSet<String>,
    may_acquire: &BTreeMap<String, AcquireSet>,
    out: &mut WalkOut,
) {
    let toks = ctx.toks;
    // Direct guard acquisition: records the summary entry and, under a
    // live guard, a lock-order edge. (Binding bookkeeping for `let`
    // guards happens in `walk_let`; here the acquisition site itself is
    // the event.)
    if guard_acquisition(toks, i) {
        if let Some((lock, line)) = lock_receiver(toks, i) {
            out.acquires.push((lock.clone(), line));
            for g in guards.iter() {
                if g.lock != lock {
                    out.edges.push(Edge {
                        from: g.lock.clone(),
                        from_line: g.line,
                        to: lock.clone(),
                        to_line: line,
                        via: None,
                        file: ctx.file.to_path_buf(),
                    });
                }
            }
        }
        return;
    }
    if let Some(name) = call_of(toks, i, BLOCKING_CALLS) {
        let blocks = if name == "send" {
            send_blocks(ctx, binds, i)
        } else {
            true
        };
        if blocks {
            out.blocked = true;
            if let Some(g) = guards.last() {
                out.findings.push(Finding::new(
                    ctx.file,
                    toks[i + 1].line,
                    RULE_GUARD,
                    format!(
                        "lock guard `{}` (acquired line {}) is alive across blocking \
                         call `{name}(…)`; drop the guard first, or justify with \
                         `// rms-analyze: allow({RULE_GUARD}, \"…\")`",
                        g.name, g.line
                    ),
                ));
            }
        }
        return;
    }
    // Local function call: `f(`, `.f(`, or `::f(` where `f` is defined
    // in the analysis set. Calls whose argument list mentions
    // `Ordering` are atomic accesses (`x.store(v, Ordering::…)`), not
    // calls into same-named local helpers.
    let Some(fname) = ident(toks.get(i)) else {
        return;
    };
    if !punct(toks.get(i + 1), '(')
        || !ctx.local_fns.contains(fname)
        || BLOCKING_CALLS.contains(&fname)
        || GUARD_CALLS.contains(&fname)
        || ident(toks.get(i.wrapping_sub(1))) == Some("fn")
        || args_mention_ordering(toks, i + 1)
    {
        return;
    }
    let line = toks[i].line;
    out.calls.push((fname.to_string(), line));
    if may_block.contains(fname) {
        if let Some(g) = guards.last() {
            out.findings.push(Finding::new(
                ctx.file,
                line,
                RULE_GUARD,
                format!(
                    "lock guard `{}` (acquired line {}) is alive across a call to \
                     `{fname}(…)`, which may block; drop the guard first, or justify \
                     with `// rms-analyze: allow({RULE_GUARD}, \"…\")`",
                    g.name, g.line
                ),
            ));
        }
    }
    if let Some(acq) = may_acquire.get(fname) {
        for lock in acq.keys() {
            for g in guards.iter() {
                if &g.lock != lock {
                    out.edges.push(Edge {
                        from: g.lock.clone(),
                        from_line: g.line,
                        to: lock.clone(),
                        to_line: line,
                        via: Some(fname.to_string()),
                        file: ctx.file.to_path_buf(),
                    });
                }
            }
        }
    }
}

/// Does the `.send(` at token `i` block? Resolves the receiver against
/// the scoped channel bindings, then the file-level name typing. A
/// field access (`self.tx.send`) consults only the file-level typing —
/// the field's declaration, not a local that happens to share the name.
fn send_blocks(ctx: &FileCtx<'_>, binds: &[Bind], i: usize) -> bool {
    let Some(recv) = ident(ctx.toks.get(i.wrapping_sub(1))) else {
        return true;
    };
    let is_field = punct(ctx.toks.get(i.wrapping_sub(2)), '.');
    if !is_field {
        if let Some(b) = binds.iter().rev().find(|b| b.name == recv) {
            return b.chan == Chan::Bounded;
        }
    }
    match ctx.senders.names.get(recv) {
        Some(chan) => *chan == Chan::Bounded,
        None => true,
    }
}

/// The lock identity of the guard call at token `i` (the `.` of
/// `.lock()`/`.read()`/`.write()`): the last path identifier before it,
/// reaching back over one index expression (`shards[i].lock()` →
/// `shards`).
fn lock_receiver(toks: &[Token], i: usize) -> Option<(String, u32)> {
    let mut j = i.checked_sub(1)?;
    if punct(toks.get(j), ']') {
        let mut nest = 1i32;
        while j > 0 && nest > 0 {
            j -= 1;
            match toks[j].tok {
                Tok::Punct(']') => nest += 1,
                Tok::Punct('[') => nest -= 1,
                _ => {}
            }
        }
        j = j.checked_sub(1)?;
    }
    ident(toks.get(j)).map(|name| (name.to_string(), toks[j].line))
}

/// Does the argument list opening at token `open` (a `(`) mention the
/// identifier `Ordering`?
fn args_mention_ordering(toks: &[Token], open: usize) -> bool {
    let mut nest = 0i32;
    let mut j = open;
    while j < toks.len() {
        match &toks[j].tok {
            Tok::Punct('(') => nest += 1,
            Tok::Punct(')') => {
                nest -= 1;
                if nest == 0 {
                    return false;
                }
            }
            Tok::Ident(id) if id == "Ordering" => return true,
            _ => {}
        }
        j += 1;
    }
    false
}

/// Builds the per-file walking context and the function list to
/// analyze: `(index into tree.functions, body span)` for every non-test
/// function with a body.
fn file_ctx<'a>(
    file: &'a Path,
    toks: &'a [Token],
    senders: &'a FileSenders,
    tree: &BlockTree,
    local_fns: BTreeSet<String>,
) -> (FileCtx<'a>, FnBodies) {
    let mut fn_spans = BTreeMap::new();
    let mut bodies = Vec::new();
    for (fi, f) in tree.functions.iter().enumerate() {
        let Some(body) = f.body else { continue };
        let scope = &tree.scopes[body];
        fn_spans.insert(f.kw, scope.end);
        if !f.in_test {
            bodies.push((fi, (scope.start, scope.end.saturating_add(1))));
        }
    }
    (
        FileCtx {
            file,
            toks,
            senders,
            fn_spans,
            local_fns,
        },
        bodies,
    )
}

/// **R1 — `guard-across-blocking`**, dataflow edition: a `let`-bound
/// `Mutex`/`RwLock` guard must not stay alive across a blocking call —
/// directly, or through a call to a same-file function the fixpoint
/// marked may-block. Unbounded `Sender::send` is not blocking. The
/// guard dies at its scope's end or at an explicit `drop(name)`.
pub fn guard_across_blocking(file: &Path, toks: &[Token]) -> Vec<Finding> {
    let tree = parse::parse(toks);
    let senders = classify_senders(toks);
    let local_fns: BTreeSet<String> = tree.functions.iter().map(|f| f.name.clone()).collect();
    let (ctx, bodies) = file_ctx(file, toks, &senders, &tree, local_fns);

    // Fixpoint: which local functions may block?
    let empty_block = BTreeSet::new();
    let empty_acquire = BTreeMap::new();
    let mut summaries: Vec<CallSummary> = Vec::new();
    for &(fi, span) in &bodies {
        let f = &tree.functions[fi];
        let out = walk_function(&ctx, f, span, &empty_block, &empty_acquire);
        summaries.push((f.name.clone(), out.blocked, out.calls));
    }
    let mut may_block: BTreeSet<String> = summaries
        .iter()
        .filter(|(_, blocked, _)| *blocked)
        .map(|(n, _, _)| n.clone())
        .collect();
    loop {
        let before = may_block.len();
        for (name, _, calls) in &summaries {
            if !may_block.contains(name) && calls.iter().any(|(c, _)| may_block.contains(c)) {
                may_block.insert(name.clone());
            }
        }
        if may_block.len() == before {
            break;
        }
    }

    let mut findings = Vec::new();
    for &(fi, span) in &bodies {
        let f = &tree.functions[fi];
        findings.extend(walk_function(&ctx, f, span, &may_block, &empty_acquire).findings);
    }
    findings.sort_by_key(|f| f.line);
    findings
}

/// **R11 — `reactor-no-block`.** Files on the reactor dispatch path
/// (the `rms-net` event loop and the serve-side protocol handler it
/// drives) must not call blocking functions *at all* — with or without
/// a guard held. A parked reactor thread stalls every connection it
/// multiplexes, so the only tolerated sites are unbounded
/// `Sender::send` (an enqueue, classified by the same channel typing
/// R1 uses) and sites justified by a pragma naming why the call cannot
/// park the loop (the poller's own readiness wait, a nonblocking
/// listener's accept).
pub fn reactor_no_block(file: &Path, toks: &[Token]) -> Vec<Finding> {
    let senders = classify_senders(toks);
    let mut findings = Vec::new();
    for i in 0..toks.len() {
        if toks[i].in_test {
            continue;
        }
        let Some(name) = call_of(toks, i, BLOCKING_CALLS) else {
            continue;
        };
        if name == "send" {
            // The receiver sits right before the `.`; a field access
            // (`self.tx.send`) and a local alike resolve through the
            // file-level `Sender`/`SyncSender` typing — only a
            // provably unbounded sender is exempt.
            let unbounded = ident(toks.get(i.wrapping_sub(1)))
                .and_then(|recv| senders.names.get(recv))
                .is_some_and(|chan| *chan == Chan::Unbounded);
            if unbounded {
                continue;
            }
        }
        let name_at = if punct(toks.get(i), '.') {
            i + 1
        } else {
            i + 2
        };
        findings.push(Finding::new(
            file,
            toks[name_at].line,
            RULE_REACTOR,
            format!(
                "`{name}(…)` can park a reactor thread, stalling every connection it \
                 multiplexes; stage output via `Ctx::push` / hand the work to an \
                 orchestration thread, or justify with \
                 `// rms-analyze: allow({RULE_REACTOR}, \"…\")`"
            ),
        ));
    }
    findings
}

/// **R7 — `lock-order`.** Builds the global lock-acquisition-order
/// graph over the given files: an edge `A → B` when a guard of lock `A`
/// is live while lock `B` is acquired — directly, or inside a called
/// function whose fixpoint may-acquire set contains `B`. Any cycle is a
/// potential deadlock, reported once with every edge's witness site.
pub fn lock_order(files: &[(&Path, &[Token])]) -> Vec<Finding> {
    // Phase 1: per-file parse + per-function summaries, merged by
    // simple function name across the whole file set.
    let mut direct: BTreeMap<String, AcquireSet> = BTreeMap::new();
    let mut calls: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
    let mut all_fns: BTreeSet<String> = BTreeSet::new();
    let mut parsed = Vec::new();
    for (file, toks) in files {
        let tree = parse::parse(toks);
        let senders = classify_senders(toks);
        all_fns.extend(tree.functions.iter().map(|f| f.name.clone()));
        parsed.push((*file, *toks, tree, senders));
    }
    let empty_block = BTreeSet::new();
    let empty_acquire = BTreeMap::new();
    for (file, toks, tree, senders) in &parsed {
        let (ctx, bodies) = file_ctx(file, toks, senders, tree, all_fns.clone());
        for &(fi, span) in &bodies {
            let f = &tree.functions[fi];
            let out = walk_function(&ctx, f, span, &empty_block, &empty_acquire);
            let entry = direct.entry(f.name.clone()).or_default();
            for (lock, line) in out.acquires {
                entry.entry(lock).or_insert(line);
            }
            calls
                .entry(f.name.clone())
                .or_default()
                .extend(out.calls.into_iter().map(|(c, _)| c));
        }
    }
    // Phase 2: fixpoint may-acquire over the name-merged call graph.
    let mut may_acquire: BTreeMap<String, AcquireSet> = direct;
    loop {
        let mut grew = false;
        for (name, callees) in &calls {
            let mut add: AcquireSet = AcquireSet::new();
            for callee in callees {
                if let Some(acq) = may_acquire.get(callee) {
                    for (lock, line) in acq {
                        add.entry(lock.clone()).or_insert(*line);
                    }
                }
            }
            let entry = may_acquire.entry(name.clone()).or_default();
            for (lock, line) in add {
                if entry.insert(lock, line).is_none() {
                    grew = true;
                }
            }
        }
        if !grew {
            break;
        }
    }
    // Phase 3: re-walk with the fixpoint context, collecting edges.
    let mut edges: Vec<Edge> = Vec::new();
    for (file, toks, tree, senders) in &parsed {
        let (ctx, bodies) = file_ctx(file, toks, senders, tree, all_fns.clone());
        for &(fi, span) in &bodies {
            let f = &tree.functions[fi];
            edges.extend(walk_function(&ctx, f, span, &empty_block, &may_acquire).edges);
        }
    }
    cycle_findings(edges)
}

/// Detects cycles in the lock-order graph and renders one finding per
/// distinct cycle (by participating lock set), naming every hop's
/// witness site.
fn cycle_findings(mut edges: Vec<Edge>) -> Vec<Finding> {
    edges.sort_by(|a, b| {
        (&a.from, &a.to, &a.file, a.to_line).cmp(&(&b.from, &b.to, &b.file, b.to_line))
    });
    edges.dedup_by(|a, b| a.from == b.from && a.to == b.to && a.file == b.file);
    // Adjacency with one representative edge per (from, to).
    let mut adj: BTreeMap<&str, Vec<&Edge>> = BTreeMap::new();
    for e in &edges {
        let list = adj.entry(e.from.as_str()).or_default();
        if !list.iter().any(|x| x.to == e.to) {
            list.push(e);
        }
    }
    let mut findings = Vec::new();
    let mut seen: BTreeSet<BTreeSet<String>> = BTreeSet::new();
    for e in &edges {
        // A cycle through `e` exists iff `e.to` reaches `e.from`.
        let Some(path) = shortest_path(&adj, &e.to, &e.from) else {
            continue;
        };
        let mut nodes: BTreeSet<String> = path.iter().map(|p| p.from.clone()).collect();
        nodes.insert(e.to.clone());
        nodes.insert(e.from.clone());
        if !seen.insert(nodes) {
            continue;
        }
        let mut chain = format!(
            "`{}` → `{}` (guard of `{}` taken line {}, `{}` acquired at {}:{}{})",
            e.from,
            e.to,
            e.from,
            e.from_line,
            e.to,
            e.file.display(),
            e.to_line,
            e.via
                .as_ref()
                .map(|v| format!(" via `{v}(…)`"))
                .unwrap_or_default(),
        );
        for hop in &path {
            chain.push_str(&format!(
                "; `{}` → `{}` (guard of `{}` taken line {}, `{}` acquired at {}:{}{})",
                hop.from,
                hop.to,
                hop.from,
                hop.from_line,
                hop.to,
                hop.file.display(),
                hop.to_line,
                hop.via
                    .as_ref()
                    .map(|v| format!(" via `{v}(…)`"))
                    .unwrap_or_default(),
            ));
        }
        findings.push(Finding::new(
            &e.file,
            e.to_line,
            RULE_LOCKORDER,
            format!(
                "potential deadlock: lock acquisition order forms a cycle — {chain}; \
                 pick one global order for these locks"
            ),
        ));
    }
    findings
}

/// BFS shortest edge-path from `from` to `to` in the lock graph.
fn shortest_path<'e>(
    adj: &BTreeMap<&str, Vec<&'e Edge>>,
    from: &str,
    to: &str,
) -> Option<Vec<&'e Edge>> {
    let mut prev: BTreeMap<&str, &'e Edge> = BTreeMap::new();
    let mut queue = std::collections::VecDeque::new();
    queue.push_back(from.to_string());
    let mut visited: BTreeSet<String> = BTreeSet::new();
    visited.insert(from.to_string());
    while let Some(node) = queue.pop_front() {
        if node == to {
            // Reconstruct.
            let mut path = Vec::new();
            let mut cur = to;
            while cur != from {
                let e = prev.get(cur)?;
                path.push(*e);
                cur = e.from.as_str();
            }
            path.reverse();
            return Some(path);
        }
        if let Some(nexts) = adj.get(node.as_str()) {
            for e in nexts {
                if visited.insert(e.to.clone()) {
                    prev.insert(e.to.as_str(), e);
                    queue.push_back(e.to.clone());
                }
            }
        }
    }
    None
}
