//! A lightweight block-tree parser over the lexer's token stream: the
//! structural layer between [`crate::lexer`] (flat tokens) and
//! [`crate::flow`] (dataflow). It recovers just enough shape for the
//! flow-sensitive rules — functions with parameter-list and body spans,
//! nested brace scopes, and statement spans within each scope — without
//! attempting real Rust parsing (no AST, no dependencies).
//!
//! Guarantees:
//!
//! * Never panics and always terminates, on arbitrary input — including
//!   unbalanced braces and byte soup (the lexer already guarantees the
//!   same; a proptest pins both). Unterminated scopes close at
//!   end-of-file.
//! * Every `{…}` pair becomes a [`Scope`]; `fn name` items at any
//!   nesting depth become [`Function`]s pointing at their body scope.
//!   Struct literals and match bodies also read as scopes — harmless
//!   over-approximation for guard-lifetime tracking (a guard bound in a
//!   brace region does die at its `}`).

use crate::lexer::{Tok, Token};

/// One `fn` item recovered from the token stream.
#[derive(Debug)]
pub struct Function {
    /// The function's name.
    pub name: String,
    /// Token index of the `fn` keyword.
    pub kw: usize,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// `true` when the `fn` keyword sits in a `#[cfg(test)]`/`#[test]`
    /// region — flow analysis skips these functions entirely.
    pub in_test: bool,
    /// Token index range of the parameter list, *inside* the parens
    /// (`params.0..params.1`, exclusive of the parens themselves).
    pub params: (usize, usize),
    /// Index into [`BlockTree::scopes`] of the body scope, or `None`
    /// for bodyless declarations (trait methods, `extern` items).
    pub body: Option<usize>,
}

/// One brace scope: `tokens[start] == '{'`, `tokens[end] == '}'` (or
/// `end == tokens.len()` when the file ends inside the scope).
#[derive(Debug)]
pub struct Scope {
    /// Token index of the opening `{`.
    pub start: usize,
    /// Token index of the matching `}` (or `tokens.len()` if unclosed).
    pub end: usize,
    /// Indices into [`BlockTree::scopes`] of directly nested scopes, in
    /// source order.
    pub children: Vec<usize>,
    /// Statement spans `lo..hi` (token indices, `hi` exclusive) at this
    /// scope's direct level: split at `;` and at child-scope closes.
    /// Child-scope interiors are not included in any parent statement.
    pub stmts: Vec<(usize, usize)>,
}

/// The parsed structure of one file: a scope arena plus the functions
/// found at any depth.
#[derive(Debug, Default)]
pub struct BlockTree {
    /// All scopes, in opening order. Index 0 onwards; scopes reference
    /// each other (and functions reference scopes) by index.
    pub scopes: Vec<Scope>,
    /// All `fn` items, in source order.
    pub functions: Vec<Function>,
}

impl BlockTree {
    /// The scope ids of `root` and every transitively nested scope
    /// (iterative — arbitrarily deep nesting cannot overflow the stack).
    pub fn subtree(&self, root: usize) -> Vec<usize> {
        let mut out = Vec::new();
        let mut stack = vec![root];
        while let Some(id) = stack.pop() {
            out.push(id);
            stack.extend(self.scopes[id].children.iter().copied());
        }
        out
    }

    /// The function whose body span contains token index `i`, preferring
    /// the innermost (nested `fn` items shadow their enclosing item).
    pub fn enclosing_function(&self, i: usize) -> Option<&Function> {
        let mut best: Option<&Function> = None;
        for f in &self.functions {
            let Some(body) = f.body else { continue };
            let s = &self.scopes[body];
            if s.start <= i && i < s.end {
                if let Some(b) = best {
                    let bs = &self.scopes[b.body.unwrap_or(body)];
                    if s.start <= bs.start {
                        continue;
                    }
                }
                best = Some(f);
            }
        }
        best
    }
}

fn is_punct(t: Option<&Token>, ch: char) -> bool {
    matches!(t.map(|t| &t.tok), Some(Tok::Punct(c)) if *c == ch)
}

/// Parses the token stream of one file into its block tree.
pub fn parse(tokens: &[Token]) -> BlockTree {
    let mut tree = BlockTree::default();
    build_scopes(tokens, &mut tree);
    find_functions(tokens, &mut tree);
    tree
}

/// Builds the scope arena with an explicit stack (no recursion), and
/// fills each scope's direct statement spans.
fn build_scopes(tokens: &[Token], tree: &mut BlockTree) {
    // Stack of (scope id, current statement start).
    let mut stack: Vec<(usize, usize)> = Vec::new();
    for (i, t) in tokens.iter().enumerate() {
        match t.tok {
            Tok::Punct('{') => {
                let id = tree.scopes.len();
                tree.scopes.push(Scope {
                    start: i,
                    end: tokens.len(),
                    children: Vec::new(),
                    stmts: Vec::new(),
                });
                if let Some(&(parent, stmt_lo)) = stack.last() {
                    tree.scopes[parent].children.push(id);
                    // The tokens before the `{` head the child scope
                    // (an `if cond {`, a `match x {`, …): close that
                    // partial span so it never swallows the child.
                    if stmt_lo < i {
                        tree.scopes[parent].stmts.push((stmt_lo, i));
                    }
                }
                stack.push((id, i + 1));
            }
            Tok::Punct('}') => {
                if let Some((id, stmt_lo)) = stack.pop() {
                    if stmt_lo < i {
                        tree.scopes[id].stmts.push((stmt_lo, i));
                    }
                    tree.scopes[id].end = i;
                    // A child close is a statement boundary in the parent.
                    if let Some(top) = stack.last_mut() {
                        top.1 = i + 1;
                    }
                }
                // Stray `}` with no open scope: ignored (unbalanced input).
            }
            Tok::Punct(';') => {
                if let Some(top) = stack.last_mut() {
                    if top.1 <= i {
                        let span = (top.1, i + 1);
                        tree.scopes[top.0].stmts.push(span);
                        top.1 = i + 1;
                    }
                }
            }
            _ => {}
        }
    }
    // Unterminated scopes: flush their trailing partial statement.
    while let Some((id, stmt_lo)) = stack.pop() {
        if stmt_lo < tokens.len() {
            tree.scopes[id].stmts.push((stmt_lo, tokens.len()));
        }
    }
}

/// Finds every `fn name` item and attaches its parameter span and body
/// scope. Skips the signature (generics, parameters, return type,
/// `where` clause) structurally rather than grammatically — good enough
/// to land on the body `{` for real Rust, and merely lossy on soup.
fn find_functions(tokens: &[Token], tree: &mut BlockTree) {
    // `{`-index → scope id, for body attachment.
    let by_start: std::collections::BTreeMap<usize, usize> = tree
        .scopes
        .iter()
        .enumerate()
        .map(|(id, s)| (s.start, id))
        .collect();
    let mut i = 0;
    while i < tokens.len() {
        let Tok::Ident(kw) = &tokens[i].tok else {
            i += 1;
            continue;
        };
        if kw != "fn" {
            i += 1;
            continue;
        }
        let Some(Tok::Ident(name)) = tokens.get(i + 1).map(|t| &t.tok) else {
            i += 1;
            continue;
        };
        let line = tokens[i].line;
        let in_test = tokens[i].in_test;
        let mut j = i + 2;
        // Generic parameters: skip `<…>`, treating `->`'s `>` as an
        // arrow, not a closer (bounds like `F: Fn() -> u32` appear here).
        if is_punct(tokens.get(j), '<') {
            let mut angle = 0i32;
            while j < tokens.len() {
                match tokens[j].tok {
                    Tok::Punct('<') => angle += 1,
                    Tok::Punct('>') if !is_punct(tokens.get(j.wrapping_sub(1)), '-') => {
                        angle -= 1;
                        if angle == 0 {
                            j += 1;
                            break;
                        }
                    }
                    _ => {}
                }
                j += 1;
            }
        }
        if !is_punct(tokens.get(j), '(') {
            i += 1;
            continue;
        }
        // Parameter list: to the matching `)`.
        let params_lo = j + 1;
        let mut paren = 0i32;
        while j < tokens.len() {
            match tokens[j].tok {
                Tok::Punct('(') => paren += 1,
                Tok::Punct(')') => {
                    paren -= 1;
                    if paren == 0 {
                        break;
                    }
                }
                _ => {}
            }
            j += 1;
        }
        let params_hi = j.min(tokens.len());
        // Return type / where clause: scan to the body `{` or a `;`
        // (bodyless declaration) at zero paren/bracket nesting.
        let mut body = None;
        let mut nest = 0i32;
        let mut k = params_hi.saturating_add(1);
        while k < tokens.len() {
            match tokens[k].tok {
                Tok::Punct('(' | '[') => nest += 1,
                Tok::Punct(')' | ']') => nest -= 1,
                Tok::Punct('{') if nest <= 0 => {
                    body = by_start.get(&k).copied();
                    break;
                }
                Tok::Punct(';') if nest <= 0 => break,
                _ => {}
            }
            k += 1;
        }
        tree.functions.push(Function {
            name: name.clone(),
            kw: i,
            line,
            in_test,
            params: (params_lo, params_hi),
            body,
        });
        i = params_hi.max(i + 2);
    }
}
