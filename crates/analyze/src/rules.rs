//! The rule implementations. Each rule is a pure function from a lexed
//! token stream to findings; scoping (which files a rule runs over) and
//! pragma suppression live in [`crate`].
//!
//! All rules skip tokens marked `in_test` — test code may unwrap, hold
//! guards across asserts, and spell malformed wire lines on purpose.

use crate::lexer::{Tok, Token};
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

/// One rule violation (or pragma-hygiene problem), printable as
/// `file:line rule-id message`.
#[derive(Debug, Clone)]
pub struct Finding {
    /// File the finding is in.
    pub file: PathBuf,
    /// 1-based line of the offending token.
    pub line: u32,
    /// Rule id (`guard-across-blocking`, `unwrap-nontest`,
    /// `wire-grammar`, `lock-poison-policy`, or `pragma`).
    pub rule: &'static str,
    /// What is wrong and what to do about it.
    pub msg: String,
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{} {} {}",
            self.file.display(),
            self.line,
            self.rule,
            self.msg
        )
    }
}

/// Rule id for [`guard_across_blocking`].
pub const RULE_GUARD: &str = "guard-across-blocking";
/// Rule id for [`unwrap_nontest`].
pub const RULE_UNWRAP: &str = "unwrap-nontest";
/// Rule id for [`wire_grammar`].
pub const RULE_WIRE: &str = "wire-grammar";
/// Rule id for [`lock_poison_policy`].
pub const RULE_POISON: &str = "lock-poison-policy";
/// Rule id for [`index_no_box_node`].
pub const RULE_BOXNODE: &str = "index-no-box-node";
/// Rule id for [`metric_name_discipline`].
pub const RULE_METRIC: &str = "metric-name-discipline";
/// Pseudo-rule id for pragma hygiene findings (malformed, unknown rule,
/// unused) — not allowable by pragma, on purpose.
pub const RULE_PRAGMA: &str = "pragma";

/// Every real (pragma-allowable) rule id.
pub const ALL_RULES: &[&str] = &[
    RULE_GUARD,
    RULE_UNWRAP,
    RULE_WIRE,
    RULE_POISON,
    RULE_BOXNODE,
    RULE_METRIC,
];

/// Method/function names whose calls block (or may block arbitrarily
/// long): channel sends/receives, fsyncs, socket accepts, buffered IO,
/// thread joins/sleeps. Holding a lock guard across any of these is the
/// PR-4/PR-5 bug class. `try_send`/`try_recv` are deliberately absent —
/// the serve layer's enqueue+append critical section is built on them.
const BLOCKING_CALLS: &[&str] = &[
    "send",
    "recv",
    "recv_timeout",
    "sync_all",
    "sync_data",
    "write_all",
    "flush",
    "accept",
    "sleep",
    "join",
    "read_line",
    "read_exact",
    "read_to_end",
    "read_to_string",
    "wait",
    "wait_timeout",
    "park",
];

/// Guard-acquiring method names: `.lock()`, `.read()`, `.write()` called
/// with no arguments (the empty-parens requirement is what keeps
/// `io::Read::read(&mut buf)` and `io::Write::write(&buf)` out).
const GUARD_CALLS: &[&str] = &["lock", "read", "write"];

fn ident(t: Option<&Token>) -> Option<&str> {
    match t.map(|t| &t.tok) {
        Some(Tok::Ident(s)) => Some(s.as_str()),
        _ => None,
    }
}

fn punct(t: Option<&Token>, ch: char) -> bool {
    matches!(t.map(|t| &t.tok), Some(Tok::Punct(c)) if *c == ch)
}

/// Does `toks[i..]` start with `.name(` or `::name(` for some `name`
/// in `set`? Returns the matched name.
fn call_of<'a>(toks: &'a [Token], i: usize, set: &[&'static str]) -> Option<&'a str> {
    let name_at = if punct(toks.get(i), '.') {
        i + 1
    } else if punct(toks.get(i), ':') && punct(toks.get(i + 1), ':') {
        i + 2
    } else {
        return None;
    };
    let name = ident(toks.get(name_at))?;
    if !set.contains(&name) {
        return None;
    }
    // Must actually be a call. (Turbofish between name and parens is
    // not used by any matched name in this codebase.)
    if !punct(toks.get(name_at + 1), '(') {
        return None;
    }
    Some(name)
}

/// Is `toks[i..]` the sequence `.name()` (empty parens) for `name` in
/// `GUARD_CALLS`?
fn guard_acquisition(toks: &[Token], i: usize) -> bool {
    punct(toks.get(i), '.')
        && ident(toks.get(i + 1)).is_some_and(|n| GUARD_CALLS.contains(&n))
        && punct(toks.get(i + 2), '(')
        && punct(toks.get(i + 3), ')')
}

/// **R1 — `guard-across-blocking`.** A `let` binding whose initializer
/// acquires a `Mutex`/`RwLock` guard must not stay alive across a
/// blocking call (`.send(`, `.recv(`, `sync_data`, `write_all`,
/// `accept(`, …). The guard dies at the end of its block or at an
/// explicit `drop(name)`. Heuristic, not flow-sensitive: `drop` in any
/// branch ends tracking (false negatives over false positives).
pub fn guard_across_blocking(file: &Path, toks: &[Token]) -> Vec<Finding> {
    let mut findings = Vec::new();
    let mut guards: Vec<Guard> = Vec::new();
    let mut depth = 0u32;
    let mut i = 0;
    while i < toks.len() {
        if toks[i].in_test {
            i += 1;
            continue;
        }
        match &toks[i].tok {
            Tok::Punct('{') => depth += 1,
            Tok::Punct('}') => {
                depth = depth.saturating_sub(1);
                guards.retain(|g| g.depth <= depth);
            }
            Tok::Ident(kw) if kw == "drop" && punct(toks.get(i + 1), '(') => {
                if let Some(name) = ident(toks.get(i + 2)) {
                    if punct(toks.get(i + 3), ')') {
                        guards.retain(|g| g.name != name);
                    }
                }
            }
            Tok::Ident(kw) if kw == "let" => {
                i = track_let_binding(file, toks, i, depth, &mut guards, &mut findings);
                continue;
            }
            _ => {
                if let Some(name) = call_of(toks, i, BLOCKING_CALLS) {
                    if let Some(g) = guards.last() {
                        findings.push(Finding {
                            file: file.to_path_buf(),
                            line: toks[i + 1].line,
                            rule: RULE_GUARD,
                            msg: format!(
                                "lock guard `{}` (acquired line {}) is alive across blocking \
                                 call `{name}(…)`; drop the guard first, or justify with \
                                 `// rms-analyze: allow({RULE_GUARD}, \"…\")`",
                                g.name, g.line
                            ),
                        });
                    }
                }
            }
        }
        i += 1;
    }
    findings
}

/// Parses one `let` statement starting at `toks[start]` (the `let`
/// keyword): records a guard if the initializer acquires one, checks the
/// initializer for blocking calls under already-live guards, and returns
/// the index to resume scanning from (the statement's terminator).
fn track_let_binding(
    file: &Path,
    toks: &[Token],
    start: usize,
    depth: u32,
    guards: &mut Vec<Guard>,
    findings: &mut Vec<Finding>,
) -> usize {
    // Pattern: tokens up to `=` at zero bracket nesting. The bound name
    // is the last identifier before a `:` (type ascription) — handles
    // `let mut g`, `let Ok(g)`, `let g: Type`.
    let mut i = start + 1;
    let mut nest = 0i32;
    let mut name: Option<(String, u32)> = None;
    let mut saw_colon = false;
    while i < toks.len() {
        match &toks[i].tok {
            Tok::Punct('(' | '[') => nest += 1,
            Tok::Punct(')' | ']') => nest -= 1,
            Tok::Punct(':') if nest == 0 => saw_colon = true,
            Tok::Punct('=') if nest == 0 => break,
            Tok::Punct(';') if nest == 0 => return i, // `let x;`
            Tok::Punct('{') => return i,              // not a binding form we track
            Tok::Ident(id) if !saw_colon && id != "mut" && id != "ref" => {
                name = Some((id.clone(), toks[i].line));
                // Tuple-struct patterns like `Ok(g)`: the inner ident
                // overwrites the constructor, which is what we want.
            }
            _ => {}
        }
        i += 1;
    }
    // Initializer: to `;` or `{` at zero nesting. A struct-literal or
    // match initializer ends the scan early — acceptable imprecision.
    let mut acquires = false;
    let mut j = i + 1;
    let mut inest = 0i32;
    while j < toks.len() {
        match &toks[j].tok {
            Tok::Punct('(' | '[') => inest += 1,
            Tok::Punct(')' | ']') => inest -= 1,
            Tok::Punct(';') if inest == 0 => break,
            Tok::Punct('{') if inest == 0 => break,
            _ => {}
        }
        if guard_acquisition(toks, j) {
            acquires = true;
        }
        if let Some(bname) = call_of(toks, j, BLOCKING_CALLS) {
            if let Some(g) = guards.last() {
                findings.push(Finding {
                    file: file.to_path_buf(),
                    line: toks[j + 1].line,
                    rule: RULE_GUARD,
                    msg: format!(
                        "lock guard `{}` (acquired line {}) is alive across blocking \
                         call `{bname}(…)`; drop the guard first, or justify with \
                         `// rms-analyze: allow({RULE_GUARD}, \"…\")`",
                        g.name, g.line
                    ),
                });
            }
        }
        j += 1;
    }
    if acquires {
        if let Some((name, line)) = name {
            guards.push(Guard { name, depth, line });
        }
    }
    j
}

/// A live lock-guard binding tracked by [`guard_across_blocking`].
struct Guard {
    name: String,
    depth: u32,
    line: u32,
}

/// **R2 — `unwrap-nontest`.** `.unwrap()` / `.expect(…)` (and their
/// `_err` variants) plus `panic!` / `unreachable!` / `todo!` /
/// `unimplemented!` in non-test code: the serving layer must degrade, not
/// die — propagate the error or justify with a pragma.
pub fn unwrap_nontest(file: &Path, toks: &[Token]) -> Vec<Finding> {
    const PANICKY_METHODS: &[&str] = &["unwrap", "expect", "unwrap_err", "expect_err"];
    const PANICKY_MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];
    let mut findings = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        if t.in_test {
            continue;
        }
        let Tok::Ident(name) = &t.tok else { continue };
        let flagged = if PANICKY_METHODS.contains(&name.as_str()) {
            i > 0 && punct(toks.get(i - 1), '.') && punct(toks.get(i + 1), '(')
        } else if PANICKY_MACROS.contains(&name.as_str()) {
            punct(toks.get(i + 1), '!')
        } else {
            false
        };
        if flagged {
            let call = if punct(toks.get(i + 1), '!') {
                format!("{name}!")
            } else {
                format!(".{name}()")
            };
            findings.push(Finding {
                file: file.to_path_buf(),
                line: t.line,
                rule: RULE_UNWRAP,
                msg: format!(
                    "`{call}` in non-test code; propagate the error (or justify with \
                     `// rms-analyze: allow({RULE_UNWRAP}, \"…\")`)"
                ),
            });
        }
    }
    findings
}

/// **R4 — `lock-poison-policy`.** `lock()`/`read()`/`write()` results
/// must go through the sanctioned recovery helper
/// (`rms_serve::sync::recover_poisoned`), not ad-hoc
/// `.unwrap()`/`.expect(…)`/`.unwrap_or_else(…)` — one audited place
/// decides what lock poisoning means for this project.
pub fn lock_poison_policy(file: &Path, toks: &[Token]) -> Vec<Finding> {
    const ADHOC: &[&str] = &[
        "unwrap",
        "expect",
        "unwrap_or_else",
        "unwrap_or_default",
        "unwrap_or",
    ];
    let mut findings = Vec::new();
    for i in 0..toks.len() {
        if toks[i].in_test {
            continue;
        }
        if !guard_acquisition(toks, i) {
            continue;
        }
        // toks[i..i+4] is `.lock()`; what follows the empty parens?
        if punct(toks.get(i + 4), '.') {
            if let Some(next) = ident(toks.get(i + 5)) {
                if ADHOC.contains(&next) && punct(toks.get(i + 6), '(') {
                    let Some(Tok::Ident(which)) = toks.get(i + 1).map(|t| &t.tok) else {
                        continue;
                    };
                    findings.push(Finding {
                        file: file.to_path_buf(),
                        line: toks[i + 1].line,
                        rule: RULE_POISON,
                        msg: format!(
                            "`.{which}().{next}(…)` handles lock poisoning ad hoc; route the \
                             result through `recover_poisoned(…)` (crates/serve/src/sync.rs), \
                             the project's one audited poison-recovery point"
                        ),
                    });
                }
            }
        }
    }
    findings
}

/// **R5 — `index-no-box-node`.** The index trees (`crates/index/src`)
/// are flat struct-of-arrays structures: nodes live in contiguous `Vec`s
/// addressed by index, never behind per-node heap allocations. Any
/// `Box<…>` or `Box::new(…)` in non-test index code reintroduces the
/// pointer-chasing layout the flat refactor removed, so it is flagged.
pub fn index_no_box_node(file: &Path, toks: &[Token]) -> Vec<Finding> {
    let mut findings = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        if t.in_test {
            continue;
        }
        let Tok::Ident(name) = &t.tok else { continue };
        if name != "Box" {
            continue;
        }
        // `Box<…>` (a boxed field or alias) or `Box::new(…)` (an
        // allocation); a bare `Box` ident in any other position is not
        // a layout decision.
        let usage = if punct(toks.get(i + 1), '<') {
            "Box<…>"
        } else if punct(toks.get(i + 1), ':') && punct(toks.get(i + 2), ':') {
            "Box::…"
        } else {
            continue;
        };
        findings.push(Finding {
            file: file.to_path_buf(),
            line: t.line,
            rule: RULE_BOXNODE,
            msg: format!(
                "`{usage}` in index code; the trees are flat struct-of-arrays layouts — \
                 store nodes in contiguous `Vec`s addressed by index (or justify with \
                 `// rms-analyze: allow({RULE_BOXNODE}, \"…\")`)"
            ),
        });
    }
    findings
}

/// The `rms-metrics` registration methods R6 audits. Their first
/// argument is the metric family name.
const METRIC_REGISTER_CALLS: &[&str] = &[
    "register_counter",
    "register_gauge",
    "register_histogram",
    "register_histogram_values",
];

/// The naming discipline `rms_metrics::validate_metric_name` enforces at
/// runtime, restated here so the analyzer catches violations at lint
/// time: ASCII `snake_case` over `[a-z0-9_]`, no empty `_`-separated
/// segment, and an `rms_<subsystem>_` prefix (≥ 3 segments).
fn metric_name_ok(name: &str) -> bool {
    !name.is_empty()
        && name
            .bytes()
            .all(|b| b.is_ascii_lowercase() || b.is_ascii_digit() || b == b'_')
        && name.split('_').all(|s| !s.is_empty())
        && name.split('_').next() == Some("rms")
        && name.split('_').count() >= 3
}

/// **R6 — `metric-name-discipline`.** Cross-file: every
/// `register_counter`/`register_gauge`/`register_histogram`/
/// `register_histogram_values` call must pass its metric name as a
/// string literal (so the catalog is statically auditable) that is
/// `snake_case` with an `rms_<subsystem>_` prefix, and each family name
/// must be registered from exactly one source location — one site owns
/// each family, so STATS/METRICS/README can never disagree about where
/// a number comes from. (One site may execute many times: per-shard or
/// per-verb loops register many series from their one call.)
pub fn metric_name_discipline(files: &[(&Path, &[Token])]) -> Vec<Finding> {
    let mut findings = Vec::new();
    // family name → first registration site
    let mut sites: BTreeMap<String, (PathBuf, u32)> = BTreeMap::new();
    for (path, toks) in files {
        for i in 0..toks.len() {
            if toks[i].in_test {
                continue;
            }
            let Some(method) = call_of(toks, i, METRIC_REGISTER_CALLS) else {
                continue;
            };
            // `call_of` matched `.name(` or `::name(` starting at i;
            // the first argument follows the open paren.
            let arg_at = if punct(toks.get(i), '.') {
                i + 3
            } else {
                i + 4
            };
            let line = toks[arg_at - 2].line;
            let Some(Tok::Str(name)) = toks.get(arg_at).map(|t| &t.tok) else {
                findings.push(Finding {
                    file: path.to_path_buf(),
                    line,
                    rule: RULE_METRIC,
                    msg: format!(
                        "`{method}(…)` takes a non-literal metric name; pass a string \
                         literal so the metric catalog stays statically auditable"
                    ),
                });
                continue;
            };
            if !metric_name_ok(name) {
                findings.push(Finding {
                    file: path.to_path_buf(),
                    line,
                    rule: RULE_METRIC,
                    msg: format!(
                        "metric name `{name}` violates the naming discipline: snake_case \
                         over [a-z0-9_] with an `rms_<subsystem>_` prefix"
                    ),
                });
                continue;
            }
            match sites.get(name.as_str()) {
                None => {
                    sites.insert(name.clone(), (path.to_path_buf(), line));
                }
                Some((first_file, first_line)) => {
                    findings.push(Finding {
                        file: path.to_path_buf(),
                        line,
                        rule: RULE_METRIC,
                        msg: format!(
                            "metric `{name}` is registered more than once (first at {}:{}); \
                             one call site owns each family — share the instrument handle \
                             instead",
                            first_file.display(),
                            first_line
                        ),
                    });
                }
            }
        }
    }
    findings
}

/// The wire vocabulary of one file set: every leading ALL-CAPS word of a
/// non-test string literal (`"INSERT {id} …"` → `INSERT`, `"OK queued"`
/// → `OK`), mapped to its first occurrence.
pub fn wire_vocabulary(files: &[(PathBuf, Vec<Token>)]) -> BTreeMap<String, (PathBuf, u32)> {
    let mut vocab = BTreeMap::new();
    for (path, toks) in files {
        for t in toks {
            if t.in_test {
                continue;
            }
            let Tok::Str(s) = &t.tok else { continue };
            let word: String = s.chars().take_while(char::is_ascii_uppercase).collect();
            if word.len() < 2 {
                continue;
            }
            // The run must end the literal or be followed by a
            // non-word character (`"OKish"` is not the verb `OK`).
            if s[word.len()..]
                .chars()
                .next()
                .is_some_and(|c| c.is_alphanumeric() || c == '_')
            {
                continue;
            }
            vocab.entry(word).or_insert_with(|| (path.clone(), t.line));
        }
    }
    vocab
}

/// **R3 — `wire-grammar`.** The serve-side protocol implementation and
/// the `rms-client` re-implementation each define the wire vocabulary
/// (verbs plus the `OK`/`ERR`/`DELTA` reply heads) in string literals;
/// this rule extracts both sets and reports every word one side speaks
/// and the other does not — the two in-tree grammars cannot drift
/// silently.
pub fn wire_grammar(
    server: &[(PathBuf, Vec<Token>)],
    client: &[(PathBuf, Vec<Token>)],
) -> Vec<Finding> {
    let sv = wire_vocabulary(server);
    let cv = wire_vocabulary(client);
    let mut findings = Vec::new();
    let mut drift = |word: &str,
                     present: &(PathBuf, u32),
                     absent_side: &[(PathBuf, Vec<Token>)],
                     side: &str| {
        let Some((absent_file, _)) = absent_side.first() else {
            return;
        };
        findings.push(Finding {
            file: absent_file.clone(),
            line: 1,
            rule: RULE_WIRE,
            msg: format!(
                "wire word `{word}` (spoken at {}:{}) has no {side} occurrence — the two \
                 protocol implementations have drifted",
                present.0.display(),
                present.1
            ),
        });
    };
    for (word, at) in &sv {
        if !cv.contains_key(word) {
            drift(word, at, client, "client-side");
        }
    }
    for (word, at) in &cv {
        if !sv.contains_key(word) {
            drift(word, at, server, "server-side");
        }
    }
    findings
}
