//! The rule implementations. Each rule is a pure function from a lexed
//! token stream to findings; scoping (which files a rule runs over) and
//! pragma suppression live in [`crate`].
//!
//! All rules skip tokens marked `in_test` — test code may unwrap, hold
//! guards across asserts, and spell malformed wire lines on purpose.

use crate::lexer::{AtomicPolicy, Tok, Token};
use std::collections::{BTreeMap, BTreeSet};
use std::path::{Path, PathBuf};

/// One rule violation (or pragma-hygiene problem), printable as
/// `file:line rule-id message`.
#[derive(Debug, Clone)]
pub struct Finding {
    /// File the finding is in.
    pub file: PathBuf,
    /// 1-based line of the offending token.
    pub line: u32,
    /// Rule id (`guard-across-blocking`, `lock-order`, …, or `pragma`).
    pub rule: &'static str,
    /// What is wrong and what to do about it.
    pub msg: String,
    /// Stable identity for `--format json` / `--baseline`: FNV-1a over
    /// rule + workspace-relative path + trimmed line text + occurrence
    /// index. Filled in by the driver after rules run; empty until then.
    pub fingerprint: String,
}

impl Finding {
    /// A finding with an (as yet) empty fingerprint.
    pub fn new(file: &Path, line: u32, rule: &'static str, msg: String) -> Self {
        Finding {
            file: file.to_path_buf(),
            line,
            rule,
            msg,
            fingerprint: String::new(),
        }
    }
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{} {} {}",
            self.file.display(),
            self.line,
            self.rule,
            self.msg
        )
    }
}

/// Rule id for [`crate::flow::guard_across_blocking`].
pub const RULE_GUARD: &str = "guard-across-blocking";
/// Rule id for [`unwrap_nontest`].
pub const RULE_UNWRAP: &str = "unwrap-nontest";
/// Rule id for [`wire_grammar`].
pub const RULE_WIRE: &str = "wire-grammar";
/// Rule id for [`lock_poison_policy`].
pub const RULE_POISON: &str = "lock-poison-policy";
/// Rule id for [`index_no_box_node`].
pub const RULE_BOXNODE: &str = "index-no-box-node";
/// Rule id for [`metric_name_discipline`].
pub const RULE_METRIC: &str = "metric-name-discipline";
/// Rule id for [`crate::flow::lock_order`].
pub const RULE_LOCKORDER: &str = "lock-order";
/// Rule id for [`wal_tag_coverage`].
pub const RULE_WALTAG: &str = "wal-tag-coverage";
/// Rule id for [`epoch_monotonic_publish`].
pub const RULE_EPOCH: &str = "epoch-monotonic-publish";
/// Rule id for [`atomic_ordering_discipline`].
pub const RULE_ATOMIC: &str = "atomic-ordering-discipline";
/// Rule id for [`crate::flow::reactor_no_block`].
pub const RULE_REACTOR: &str = "reactor-no-block";
/// Pseudo-rule id for pragma hygiene findings (malformed, unknown rule,
/// unused) — not allowable by pragma, on purpose.
pub const RULE_PRAGMA: &str = "pragma";

/// Every real (pragma-allowable) rule id.
pub const ALL_RULES: &[&str] = &[
    RULE_GUARD,
    RULE_UNWRAP,
    RULE_WIRE,
    RULE_POISON,
    RULE_BOXNODE,
    RULE_METRIC,
    RULE_LOCKORDER,
    RULE_WALTAG,
    RULE_EPOCH,
    RULE_ATOMIC,
    RULE_REACTOR,
];

/// One-line description per rule, in [`ALL_RULES`] order — the source
/// of truth behind `--list-rules` and the README rule table (a
/// doc-drift test pins the two together). Keep these single-line and
/// free of `|` so they can sit in a Markdown table cell.
pub const RULE_DESCRIPTIONS: &[(&str, &str)] = &[
    (
        RULE_GUARD,
        "a `let`-bound lock guard must not stay alive across a blocking call — directly, \
         or through a local function the may-block fixpoint marks blocking; unbounded \
         `Sender::send` is exempt",
    ),
    (
        RULE_UNWRAP,
        "no `.unwrap()` / `.expect(…)` / `panic!`-family macros in non-test code; the \
         serving layer degrades, it does not die",
    ),
    (
        RULE_WIRE,
        "the server and client wire vocabularies (ALL-CAPS verbs and reply heads in \
         string literals) must match exactly",
    ),
    (
        RULE_POISON,
        "lock-acquisition results go through `recover_poisoned`, never ad-hoc \
         `.unwrap()`-style poison handling",
    ),
    (
        RULE_BOXNODE,
        "no `Box<…>` / `Box::new(…)` in index code; the trees are flat struct-of-arrays \
         layouts",
    ),
    (
        RULE_METRIC,
        "metric names are string literals, `rms_<subsystem>_` snake_case, each family \
         registered from exactly one site",
    ),
    (
        RULE_LOCKORDER,
        "the global lock-acquisition-order graph over `crates/serve/src` must stay \
         acyclic; a cycle is a potential deadlock, reported with each edge's witness \
         sites",
    ),
    (
        RULE_WALTAG,
        "every WAL record tag has an encode use and a replay arm, and every `Op::` \
         variant has a WAL tag — an op cannot silently skip durability",
    ),
    (
        RULE_EPOCH,
        "deref-writes through a fresh `.write()` guard happen only inside sanctioned \
         publish helpers (`store` / `publish*`), pinning epoch-monotone snapshot \
         publication",
    ),
    (
        RULE_ATOMIC,
        "every `Ordering::` use in serve and metrics code must match the file's declared \
         `atomic-policy(…)` table; undeclared atomics and undeclared `SeqCst` are \
         findings",
    ),
    (
        RULE_REACTOR,
        "reactor dispatch code (the `rms-net` event loop and the serve-side handler) \
         must not call blocking functions at all; unbounded `Sender::send` is exempt, \
         anything else needs a pragma naming why it cannot park the loop",
    ),
];

/// Method/function names whose calls block (or may block arbitrarily
/// long): channel sends/receives, fsyncs, socket accepts, buffered IO,
/// thread joins/sleeps. Holding a lock guard across any of these is the
/// PR-4/PR-5 bug class. `try_send`/`try_recv` are deliberately absent —
/// the serve layer's enqueue+append critical section is built on them.
pub(crate) const BLOCKING_CALLS: &[&str] = &[
    "send",
    "recv",
    "recv_timeout",
    "sync_all",
    "sync_data",
    "write_all",
    "flush",
    "accept",
    "sleep",
    "join",
    "read_line",
    "read_exact",
    "read_to_end",
    "read_to_string",
    "wait",
    "wait_timeout",
    "park",
];

/// Guard-acquiring method names: `.lock()`, `.read()`, `.write()` called
/// with no arguments (the empty-parens requirement is what keeps
/// `io::Read::read(&mut buf)` and `io::Write::write(&buf)` out).
pub(crate) const GUARD_CALLS: &[&str] = &["lock", "read", "write"];

pub(crate) fn ident(t: Option<&Token>) -> Option<&str> {
    match t.map(|t| &t.tok) {
        Some(Tok::Ident(s)) => Some(s.as_str()),
        _ => None,
    }
}

pub(crate) fn punct(t: Option<&Token>, ch: char) -> bool {
    matches!(t.map(|t| &t.tok), Some(Tok::Punct(c)) if *c == ch)
}

/// Does `toks[i..]` start with `.name(` or `::name(` for some `name`
/// in `set`? Returns the matched name.
pub(crate) fn call_of<'a>(toks: &'a [Token], i: usize, set: &[&'static str]) -> Option<&'a str> {
    let name_at = if punct(toks.get(i), '.') {
        i + 1
    } else if punct(toks.get(i), ':') && punct(toks.get(i + 1), ':') {
        i + 2
    } else {
        return None;
    };
    let name = ident(toks.get(name_at))?;
    if !set.contains(&name) {
        return None;
    }
    // Must actually be a call. (Turbofish between name and parens is
    // not used by any matched name in this codebase.)
    if !punct(toks.get(name_at + 1), '(') {
        return None;
    }
    Some(name)
}

/// Is `toks[i..]` the sequence `.name()` (empty parens) for `name` in
/// `GUARD_CALLS`?
pub(crate) fn guard_acquisition(toks: &[Token], i: usize) -> bool {
    punct(toks.get(i), '.')
        && ident(toks.get(i + 1)).is_some_and(|n| GUARD_CALLS.contains(&n))
        && punct(toks.get(i + 2), '(')
        && punct(toks.get(i + 3), ')')
}

/// **R1 — `guard-across-blocking`.** A `let` binding whose initializer
/// acquires a `Mutex`/`RwLock` guard must not stay alive across a
/// blocking call. Since PR 9 this is the dataflow analysis in
/// [`crate::flow`]: guard lifetimes follow nested scopes, `drop()` and
/// shadowing; calls into same-file functions that (transitively) block
/// count as blocking sites; and an unbounded `Sender::send` does not.
pub fn guard_across_blocking(file: &Path, toks: &[Token]) -> Vec<Finding> {
    crate::flow::guard_across_blocking(file, toks)
}

/// **R11 — `reactor-no-block`.** Reactor dispatch code must not call
/// blocking functions at all, guard held or not: a parked reactor
/// thread stalls every connection it multiplexes. Implemented in
/// [`crate::flow`], sharing R1's channel classifier so an unbounded
/// `Sender::send` stays exempt.
pub fn reactor_no_block(file: &Path, toks: &[Token]) -> Vec<Finding> {
    crate::flow::reactor_no_block(file, toks)
}

/// **R2 — `unwrap-nontest`.** `.unwrap()` / `.expect(…)` (and their
/// `_err` variants) plus `panic!` / `unreachable!` / `todo!` /
/// `unimplemented!` in non-test code: the serving layer must degrade, not
/// die — propagate the error or justify with a pragma.
pub fn unwrap_nontest(file: &Path, toks: &[Token]) -> Vec<Finding> {
    const PANICKY_METHODS: &[&str] = &["unwrap", "expect", "unwrap_err", "expect_err"];
    const PANICKY_MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];
    let mut findings = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        if t.in_test {
            continue;
        }
        let Tok::Ident(name) = &t.tok else { continue };
        let flagged = if PANICKY_METHODS.contains(&name.as_str()) {
            i > 0 && punct(toks.get(i - 1), '.') && punct(toks.get(i + 1), '(')
        } else if PANICKY_MACROS.contains(&name.as_str()) {
            punct(toks.get(i + 1), '!')
        } else {
            false
        };
        if flagged {
            let call = if punct(toks.get(i + 1), '!') {
                format!("{name}!")
            } else {
                format!(".{name}()")
            };
            findings.push(Finding::new(
                file,
                t.line,
                RULE_UNWRAP,
                format!(
                    "`{call}` in non-test code; propagate the error (or justify with \
                     `// rms-analyze: allow({RULE_UNWRAP}, \"…\")`)"
                ),
            ));
        }
    }
    findings
}

/// **R4 — `lock-poison-policy`.** `lock()`/`read()`/`write()` results
/// must go through the sanctioned recovery helper
/// (`rms_serve::sync::recover_poisoned`), not ad-hoc
/// `.unwrap()`/`.expect(…)`/`.unwrap_or_else(…)` — one audited place
/// decides what lock poisoning means for this project.
pub fn lock_poison_policy(file: &Path, toks: &[Token]) -> Vec<Finding> {
    const ADHOC: &[&str] = &[
        "unwrap",
        "expect",
        "unwrap_or_else",
        "unwrap_or_default",
        "unwrap_or",
    ];
    let mut findings = Vec::new();
    for i in 0..toks.len() {
        if toks[i].in_test {
            continue;
        }
        if !guard_acquisition(toks, i) {
            continue;
        }
        // toks[i..i+4] is `.lock()`; what follows the empty parens?
        if punct(toks.get(i + 4), '.') {
            if let Some(next) = ident(toks.get(i + 5)) {
                if ADHOC.contains(&next) && punct(toks.get(i + 6), '(') {
                    let Some(Tok::Ident(which)) = toks.get(i + 1).map(|t| &t.tok) else {
                        continue;
                    };
                    findings.push(Finding::new(
                        file,
                        toks[i + 1].line,
                        RULE_POISON,
                        format!(
                            "`.{which}().{next}(…)` handles lock poisoning ad hoc; route the \
                             result through `recover_poisoned(…)` (crates/serve/src/sync.rs), \
                             the project's one audited poison-recovery point"
                        ),
                    ));
                }
            }
        }
    }
    findings
}

/// **R5 — `index-no-box-node`.** The index trees (`crates/index/src`)
/// are flat struct-of-arrays structures: nodes live in contiguous `Vec`s
/// addressed by index, never behind per-node heap allocations. Any
/// `Box<…>` or `Box::new(…)` in non-test index code reintroduces the
/// pointer-chasing layout the flat refactor removed, so it is flagged.
pub fn index_no_box_node(file: &Path, toks: &[Token]) -> Vec<Finding> {
    let mut findings = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        if t.in_test {
            continue;
        }
        let Tok::Ident(name) = &t.tok else { continue };
        if name != "Box" {
            continue;
        }
        // `Box<…>` (a boxed field or alias) or `Box::new(…)` (an
        // allocation); a bare `Box` ident in any other position is not
        // a layout decision.
        let usage = if punct(toks.get(i + 1), '<') {
            "Box<…>"
        } else if punct(toks.get(i + 1), ':') && punct(toks.get(i + 2), ':') {
            "Box::…"
        } else {
            continue;
        };
        findings.push(Finding::new(
            file,
            t.line,
            RULE_BOXNODE,
            format!(
                "`{usage}` in index code; the trees are flat struct-of-arrays layouts — \
                 store nodes in contiguous `Vec`s addressed by index (or justify with \
                 `// rms-analyze: allow({RULE_BOXNODE}, \"…\")`)"
            ),
        ));
    }
    findings
}

/// The `rms-metrics` registration methods R6 audits. Their first
/// argument is the metric family name.
const METRIC_REGISTER_CALLS: &[&str] = &[
    "register_counter",
    "register_gauge",
    "register_histogram",
    "register_histogram_values",
];

/// The naming discipline `rms_metrics::validate_metric_name` enforces at
/// runtime, restated here so the analyzer catches violations at lint
/// time: ASCII `snake_case` over `[a-z0-9_]`, no empty `_`-separated
/// segment, and an `rms_<subsystem>_` prefix (≥ 3 segments).
fn metric_name_ok(name: &str) -> bool {
    !name.is_empty()
        && name
            .bytes()
            .all(|b| b.is_ascii_lowercase() || b.is_ascii_digit() || b == b'_')
        && name.split('_').all(|s| !s.is_empty())
        && name.split('_').next() == Some("rms")
        && name.split('_').count() >= 3
}

/// **R6 — `metric-name-discipline`.** Cross-file: every
/// `register_counter`/`register_gauge`/`register_histogram`/
/// `register_histogram_values` call must pass its metric name as a
/// string literal (so the catalog is statically auditable) that is
/// `snake_case` with an `rms_<subsystem>_` prefix, and each family name
/// must be registered from exactly one source location — one site owns
/// each family, so STATS/METRICS/README can never disagree about where
/// a number comes from. (One site may execute many times: per-shard or
/// per-verb loops register many series from their one call.)
pub fn metric_name_discipline(files: &[(&Path, &[Token])]) -> Vec<Finding> {
    let mut findings = Vec::new();
    // family name → first registration site
    let mut sites: BTreeMap<String, (PathBuf, u32)> = BTreeMap::new();
    for (path, toks) in files {
        for i in 0..toks.len() {
            if toks[i].in_test {
                continue;
            }
            let Some(method) = call_of(toks, i, METRIC_REGISTER_CALLS) else {
                continue;
            };
            // `call_of` matched `.name(` or `::name(` starting at i;
            // the first argument follows the open paren.
            let arg_at = if punct(toks.get(i), '.') {
                i + 3
            } else {
                i + 4
            };
            let line = toks[arg_at - 2].line;
            let Some(Tok::Str(name)) = toks.get(arg_at).map(|t| &t.tok) else {
                findings.push(Finding::new(
                    path,
                    line,
                    RULE_METRIC,
                    format!(
                        "`{method}(…)` takes a non-literal metric name; pass a string \
                         literal so the metric catalog stays statically auditable"
                    ),
                ));
                continue;
            };
            if !metric_name_ok(name) {
                findings.push(Finding::new(
                    path,
                    line,
                    RULE_METRIC,
                    format!(
                        "metric name `{name}` violates the naming discipline: snake_case \
                         over [a-z0-9_] with an `rms_<subsystem>_` prefix"
                    ),
                ));
                continue;
            }
            match sites.get(name.as_str()) {
                None => {
                    sites.insert(name.clone(), (path.to_path_buf(), line));
                }
                Some((first_file, first_line)) => {
                    findings.push(Finding::new(
                        path,
                        line,
                        RULE_METRIC,
                        format!(
                            "metric `{name}` is registered more than once (first at {}:{}); \
                             one call site owns each family — share the instrument handle \
                             instead",
                            first_file.display(),
                            first_line
                        ),
                    ));
                }
            }
        }
    }
    findings
}

/// The wire vocabulary of one file set: every leading ALL-CAPS word of a
/// non-test string literal (`"INSERT {id} …"` → `INSERT`, `"OK queued"`
/// → `OK`), mapped to its first occurrence.
pub fn wire_vocabulary(files: &[(PathBuf, Vec<Token>)]) -> BTreeMap<String, (PathBuf, u32)> {
    let mut vocab = BTreeMap::new();
    for (path, toks) in files {
        for t in toks {
            if t.in_test {
                continue;
            }
            let Tok::Str(s) = &t.tok else { continue };
            let word: String = s.chars().take_while(char::is_ascii_uppercase).collect();
            if word.len() < 2 {
                continue;
            }
            // The run must end the literal or be followed by a
            // non-word character (`"OKish"` is not the verb `OK`).
            if s[word.len()..]
                .chars()
                .next()
                .is_some_and(|c| c.is_alphanumeric() || c == '_')
            {
                continue;
            }
            vocab.entry(word).or_insert_with(|| (path.clone(), t.line));
        }
    }
    vocab
}

/// **R3 — `wire-grammar`.** The serve-side protocol implementation and
/// the `rms-client` re-implementation each define the wire vocabulary
/// (verbs plus the `OK`/`ERR`/`DELTA` reply heads) in string literals;
/// this rule extracts both sets and reports every word one side speaks
/// and the other does not — the two in-tree grammars cannot drift
/// silently.
pub fn wire_grammar(
    server: &[(PathBuf, Vec<Token>)],
    client: &[(PathBuf, Vec<Token>)],
) -> Vec<Finding> {
    let sv = wire_vocabulary(server);
    let cv = wire_vocabulary(client);
    let mut findings = Vec::new();
    let mut drift = |word: &str,
                     present: &(PathBuf, u32),
                     absent_side: &[(PathBuf, Vec<Token>)],
                     side: &str| {
        let Some((absent_file, _)) = absent_side.first() else {
            return;
        };
        findings.push(Finding::new(
            absent_file,
            1,
            RULE_WIRE,
            format!(
                "wire word `{word}` (spoken at {}:{}) has no {side} occurrence — the two \
                 protocol implementations have drifted",
                present.0.display(),
                present.1
            ),
        ));
    };
    for (word, at) in &sv {
        if !cv.contains_key(word) {
            drift(word, at, client, "client-side");
        }
    }
    for (word, at) in &cv {
        if !sv.contains_key(word) {
            drift(word, at, server, "server-side");
        }
    }
    findings
}

/// **R8 — `wal-tag-coverage`.** Cross-file, in the spirit of
/// `wire-grammar`: the WAL record tags (`const TAG_*` in `wal.rs`) and
/// the op vocabulary must stay symmetric. Concretely:
///
/// * every declared tag must be *encoded* somewhere (a use that is not a
///   match arm — frames with it are actually written), and
/// * every declared tag must have a *replay* match arm (`TAG_X =>` or
///   `TAG_X | …` — recovery understands it), and
/// * every `Op::Variant` referenced in non-test wal/wire code must have
///   a `TAG_<VARIANT>` declaration — a new op cannot silently skip
///   durability.
///
/// Tag-from-variant derivation is `TAG_` + the variant name uppercased
/// (`Op::Insert` → `TAG_INSERT`); multi-word variants must pick tag
/// names accordingly.
pub fn wal_tag_coverage(
    wal: &[(PathBuf, Vec<Token>)],
    wire: &[(PathBuf, Vec<Token>)],
) -> Vec<Finding> {
    struct TagInfo {
        file: PathBuf,
        line: u32,
        encode: bool,
        replay: bool,
    }
    let mut tags: BTreeMap<String, TagInfo> = BTreeMap::new();
    // Declarations: `const TAG_X`.
    for (path, toks) in wal {
        for (i, t) in toks.iter().enumerate() {
            if t.in_test {
                continue;
            }
            let Tok::Ident(name) = &t.tok else { continue };
            if name.starts_with("TAG_") && ident(toks.get(i.wrapping_sub(1))) == Some("const") {
                tags.entry(name.clone()).or_insert(TagInfo {
                    file: path.clone(),
                    line: t.line,
                    encode: false,
                    replay: false,
                });
            }
        }
    }
    // Uses: `TAG_X =>` / `TAG_X | …` is a replay match arm; any other
    // non-declaration mention encodes (frame construction, equality
    // guards fold in here too — over-approximation on the safe side:
    // a tag that is *only* compared still has no real encode arm only
    // if nothing constructs it, which the fixture pins).
    for (_, toks) in wal {
        for (i, t) in toks.iter().enumerate() {
            if t.in_test {
                continue;
            }
            let Tok::Ident(name) = &t.tok else { continue };
            let Some(info) = tags.get_mut(name.as_str()) else {
                continue;
            };
            if ident(toks.get(i.wrapping_sub(1))) == Some("const") {
                continue;
            }
            if (punct(toks.get(i + 1), '=') && punct(toks.get(i + 2), '>'))
                || punct(toks.get(i + 1), '|')
            {
                info.replay = true;
            } else {
                info.encode = true;
            }
        }
    }
    // Op vocabulary: `Op::Variant` path references across wal + wire.
    let mut ops: BTreeMap<String, (PathBuf, u32)> = BTreeMap::new();
    for (path, toks) in wal.iter().chain(wire) {
        for i in 0..toks.len() {
            if toks[i].in_test {
                continue;
            }
            if ident(toks.get(i)) != Some("Op")
                || !punct(toks.get(i + 1), ':')
                || !punct(toks.get(i + 2), ':')
            {
                continue;
            }
            if let Some(v) = ident(toks.get(i + 3)) {
                if v.starts_with(char::is_uppercase) {
                    ops.entry(v.to_string())
                        .or_insert((path.clone(), toks[i].line));
                }
            }
        }
    }
    let mut findings = Vec::new();
    for (name, info) in &tags {
        if !info.encode {
            findings.push(Finding::new(
                &info.file,
                info.line,
                RULE_WALTAG,
                format!(
                    "WAL tag `{name}` is declared but never encoded — no frame with this \
                     tag is ever written; wire it into the encode path or delete it"
                ),
            ));
        }
        if !info.replay {
            findings.push(Finding::new(
                &info.file,
                info.line,
                RULE_WALTAG,
                format!(
                    "WAL tag `{name}` has no replay match arm — frames with this tag \
                     would be rejected on recovery; add its arm to the replay dispatch"
                ),
            ));
        }
    }
    for (variant, (path, line)) in &ops {
        let expect = format!("TAG_{}", variant.to_uppercase());
        if !tags.contains_key(&expect) {
            findings.push(Finding::new(
                path,
                *line,
                RULE_WALTAG,
                format!(
                    "`Op::{variant}` has no WAL record tag `{expect}` — every op must \
                     carry a WAL tag with encode and replay arms so it cannot silently \
                     skip durability"
                ),
            ));
        }
    }
    findings
}

/// **R9 — `epoch-monotonic-publish`.** A statement of the shape
/// `*… .write() … = …;` — a deref-write through a freshly acquired
/// `RwLock` write guard — is how the snapshot cell publishes. Publishing
/// anywhere except the sanctioned helpers (`fn store`, `fn publish*`)
/// bypasses the epoch-monotonicity bookkeeping those helpers pin, so any
/// other site is a finding.
pub fn epoch_monotonic_publish(file: &Path, toks: &[Token]) -> Vec<Finding> {
    let tree = crate::parse::parse(toks);
    let mut findings = Vec::new();
    for scope in &tree.scopes {
        for &(lo, hi) in &scope.stmts {
            if toks.get(lo).is_none_or(|t| t.in_test) || !punct(toks.get(lo), '*') {
                continue;
            }
            let mut has_write = false;
            let mut assign = false;
            let mut nest = 0i32;
            for i in lo..hi.min(toks.len()) {
                match toks[i].tok {
                    Tok::Punct('(' | '[') => nest += 1,
                    Tok::Punct(')' | ']') => nest -= 1,
                    _ => {}
                }
                if guard_acquisition(toks, i) && ident(toks.get(i + 1)) == Some("write") {
                    has_write = true;
                }
                // A bare `=` (not `==`, `=>`, or a compound assign) at
                // the statement's top nesting level.
                if nest == 0
                    && punct(toks.get(i), '=')
                    && !punct(toks.get(i + 1), '=')
                    && !punct(toks.get(i + 1), '>')
                    && !matches!(
                        toks.get(i.wrapping_sub(1)).map(|t| &t.tok),
                        Some(Tok::Punct(
                            '=' | '!' | '<' | '>' | '+' | '-' | '*' | '/' | '%' | '&' | '|' | '^'
                        ))
                    )
                {
                    assign = true;
                }
            }
            if !(has_write && assign) {
                continue;
            }
            let sanctioned = tree
                .enclosing_function(lo)
                .is_some_and(|f| f.name == "store" || f.name.starts_with("publish"));
            if sanctioned {
                continue;
            }
            findings.push(Finding::new(
                file,
                toks[lo].line,
                RULE_EPOCH,
                format!(
                    "deref-write through a fresh `.write()` guard outside a sanctioned \
                     publish helper; snapshot publication must go through \
                     `SnapshotCell::store` or a `publish*` helper so epoch monotonicity \
                     is enforced in one place (or justify with \
                     `// rms-analyze: allow({RULE_EPOCH}, \"…\")`)"
                ),
            ));
        }
    }
    findings
}

/// The receiver of the atomic access whose argument list contains the
/// `Ordering` ident at `i`: walks back to the enclosing `(`, expects
/// `recv.method(`, and resolves `recv` over one index expression and
/// tuple-field hops (`self.cells[i].0.fetch_add(…)` → `cells`).
fn atomic_receiver(toks: &[Token], i: usize) -> Option<&str> {
    let mut j = i;
    let mut nest = 0i32;
    loop {
        j = j.checked_sub(1)?;
        match toks[j].tok {
            Tok::Punct(')' | ']') => nest += 1,
            Tok::Punct('(' | '[') => {
                nest -= 1;
                if nest < 0 {
                    break;
                }
            }
            _ => {}
        }
    }
    ident(toks.get(j.checked_sub(1)?))?; // the method name
    if !punct(toks.get(j.checked_sub(2)?), '.') {
        return None;
    }
    let mut k = j.checked_sub(3)?;
    loop {
        if punct(toks.get(k), ']') {
            let mut bn = 1i32;
            while k > 0 && bn > 0 {
                k -= 1;
                match toks[k].tok {
                    Tok::Punct(']') => bn += 1,
                    Tok::Punct('[') => bn -= 1,
                    _ => {}
                }
            }
            k = k.checked_sub(1)?;
            continue;
        }
        let name = ident(toks.get(k))?;
        // Tuple-field hop: `pair.0.store(…)` — the receiver is `pair`.
        if name.bytes().all(|b| b.is_ascii_digit()) && punct(toks.get(k.wrapping_sub(1)), '.') {
            k = k.checked_sub(2)?;
            continue;
        }
        return Some(name);
    }
}

/// **R10 — `atomic-ordering-discipline`.** Every `Ordering::<variant>`
/// use in non-test code must be covered by the file's declared policy
/// table (`// rms-analyze: atomic-policy(name: Ordering|…, …)` comments,
/// one entry per atomic receiver). Undeclared atomics are findings —
/// including `SeqCst`, which is never grandfathered in: paying for the
/// strongest ordering must be a written-down decision. Unused policy
/// entries are findings too (same hygiene as unused pragmas).
pub fn atomic_ordering_discipline(
    file: &Path,
    toks: &[Token],
    policies: &[AtomicPolicy],
) -> Vec<Finding> {
    let mut table: BTreeMap<&str, BTreeSet<&str>> = BTreeMap::new();
    for p in policies {
        table
            .entry(p.name.as_str())
            .or_default()
            .extend(p.orderings.iter().map(String::as_str));
    }
    let mut used: BTreeSet<&str> = BTreeSet::new();
    let mut findings = Vec::new();
    for i in 0..toks.len() {
        if toks[i].in_test {
            continue;
        }
        if ident(toks.get(i)) != Some("Ordering")
            || !punct(toks.get(i + 1), ':')
            || !punct(toks.get(i + 2), ':')
        {
            continue;
        }
        let Some(variant) = ident(toks.get(i + 3)) else {
            continue;
        };
        if !crate::lexer::ATOMIC_ORDERINGS.contains(&variant) {
            continue; // `std::cmp::Ordering::Less` and friends
        }
        let line = toks[i].line;
        let Some(recv) = atomic_receiver(toks, i) else {
            findings.push(Finding::new(
                file,
                line,
                RULE_ATOMIC,
                format!(
                    "`Ordering::{variant}` here cannot be attributed to an atomic \
                     receiver (fence or free-function form); rewrite as a method call \
                     on a declared atomic, or justify with \
                     `// rms-analyze: allow({RULE_ATOMIC}, \"…\")`"
                ),
            ));
            continue;
        };
        match table.get(recv) {
            None => {
                let seqcst_hint = if variant == "SeqCst" {
                    " (`SeqCst` is the strongest, most expensive ordering — paying for \
                     it must be a declared decision)"
                } else {
                    ""
                };
                findings.push(Finding::new(
                    file,
                    line,
                    RULE_ATOMIC,
                    format!(
                        "atomic `{recv}` uses `Ordering::{variant}` but has no \
                         atomic-policy entry{seqcst_hint}; declare it with \
                         `// rms-analyze: atomic-policy({recv}: {variant}|…)`"
                    ),
                ));
            }
            Some(allowed) => {
                used.insert(table.get_key_value(recv).map(|(k, _)| *k).unwrap_or(recv));
                if !allowed.contains(variant) {
                    let list = allowed.iter().copied().collect::<Vec<_>>().join("|");
                    findings.push(Finding::new(
                        file,
                        line,
                        RULE_ATOMIC,
                        format!(
                            "atomic `{recv}` uses `Ordering::{variant}` but its declared \
                             policy allows only `{list}`; use a declared ordering or \
                             widen the `atomic-policy({recv}: …)` entry deliberately"
                        ),
                    ));
                }
            }
        }
    }
    for p in policies {
        if !used.contains(p.name.as_str()) {
            findings.push(Finding::new(
                file,
                p.line,
                RULE_ATOMIC,
                format!(
                    "atomic-policy entry `{}` matches no atomic use in this file; \
                     delete the stale entry",
                    p.name
                ),
            ));
        }
    }
    findings
}
