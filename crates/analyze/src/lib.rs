//! `rms-analyze` — project-specific static analysis for the krms
//! workspace: a hand-rolled lexer (no full AST, no dependencies) plus
//! five lint rules encoding the concurrency, wire-protocol, and memory-
//! layout invariants this codebase has historically broken in
//! review-invisible ways.
//!
//! Rules:
//!
//! | id | checks |
//! |----|--------|
//! | `guard-across-blocking` | no `Mutex`/`RwLock` guard alive across a blocking call (`send`, `recv`, `sync_data`, `write_all`, `accept`, …) in `crates/serve` |
//! | `unwrap-nontest` | no `.unwrap()`/`.expect(…)`/`panic!`-family in non-test serve/client code |
//! | `wire-grammar` | the verb/`OK`/`ERR`/`DELTA` vocabulary of `crates/serve` protocol files and `rms-client` must match exactly |
//! | `lock-poison-policy` | `lock()`/`read()`/`write()` results go through `recover_poisoned`, not ad-hoc unwraps |
//! | `index-no-box-node` | no per-node `Box` allocations in `crates/index/src` — the trees stay flat struct-of-arrays |
//! | `metric-name-discipline` | `rms-metrics` registrations use literal `snake_case` names with an `rms_<subsystem>_` prefix, each family registered from exactly one call site |
//!
//! Any finding can be suppressed in place with
//! `// rms-analyze: allow(<rule-id>, "<reason>")` — on the offending
//! line, or on its own line covering the next line. The reason is
//! mandatory; unused or malformed pragmas are findings themselves
//! (rule id `pragma`).

pub mod lexer;
pub mod rules;

use lexer::{LexOutput, Token};
use rules::Finding;
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

pub use rules::{
    ALL_RULES, RULE_BOXNODE, RULE_GUARD, RULE_METRIC, RULE_POISON, RULE_PRAGMA, RULE_UNWRAP,
    RULE_WIRE,
};

/// The outcome of an analysis run.
#[derive(Debug, Default)]
pub struct Report {
    /// Surviving findings, in file-then-line order. Nonzero ⇒ exit 1.
    pub findings: Vec<Finding>,
    /// Findings suppressed by a pragma, with the pragma's reason —
    /// reported (to stderr) but not fatal.
    pub suppressed: Vec<(Finding, String)>,
    /// Total number of well-formed `allow` pragmas seen.
    pub pragma_count: usize,
    /// Number of files lexed.
    pub files_scanned: usize,
}

/// A lexed source file ready for rule application.
struct SourceFile {
    path: PathBuf,
    rel: PathBuf,
    lex: LexOutput,
}

fn read_and_lex(root: &Path, rel: PathBuf) -> std::io::Result<SourceFile> {
    let path = root.join(&rel);
    let src = std::fs::read_to_string(&path)?;
    Ok(SourceFile {
        path,
        rel,
        lex: lexer::lex(&src),
    })
}

/// Collects the `.rs` files under `dir` (recursively), as paths
/// relative to `root`. Sorted for deterministic output.
fn collect_rs(root: &Path, dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    let abs = root.join(dir);
    if !abs.is_dir() {
        return Ok(());
    }
    let mut entries: Vec<_> = std::fs::read_dir(&abs)?
        .collect::<Result<Vec<_>, _>>()?
        .into_iter()
        .map(|e| e.path())
        .collect();
    entries.sort();
    for p in entries {
        let rel = dir.join(p.file_name().unwrap_or_default());
        if p.is_dir() {
            collect_rs(root, &rel, out)?;
        } else if p.extension().is_some_and(|e| e == "rs") {
            out.push(rel);
        }
    }
    Ok(())
}

/// The workspace file set `--workspace` scans: every crate's `src/`
/// plus `examples/` and `benches/`, and the root binary's `src/`.
/// `vendor/` (vendored stand-in dependencies) is deliberately excluded
/// — we lint our code, not our stand-ins. Fixture trees under
/// `tests/fixtures/` are likewise excluded (they violate rules on
/// purpose), but regular integration tests are scanned.
fn workspace_files(root: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut files = Vec::new();
    collect_rs(root, Path::new("src"), &mut files)?;
    collect_rs(root, Path::new("examples"), &mut files)?;
    collect_rs(root, Path::new("benches"), &mut files)?;
    let crates = root.join("crates");
    if crates.is_dir() {
        let mut members: Vec<_> = std::fs::read_dir(&crates)?
            .collect::<Result<Vec<_>, _>>()?
            .into_iter()
            .map(|e| e.path())
            .collect();
        members.sort();
        for m in members {
            let Some(name) = m.file_name().map(std::ffi::OsStr::to_os_string) else {
                continue;
            };
            let base = Path::new("crates").join(&name);
            collect_rs(root, &base.join("src"), &mut files)?;
            collect_rs(root, &base.join("examples"), &mut files)?;
            collect_rs(root, &base.join("benches"), &mut files)?;
            // Integration tests, but never tests/fixtures/.
            let tests = base.join("tests");
            if root.join(&tests).is_dir() {
                let mut sub = Vec::new();
                collect_rs(root, &tests, &mut sub)?;
                files.extend(
                    sub.into_iter()
                        .filter(|p| !p.starts_with(tests.join("fixtures"))),
                );
            }
        }
    }
    Ok(files)
}

/// Per-rule file scoping for a workspace run. Paths are relative,
/// `/`-separated as produced by [`workspace_files`].
fn rule_applies(rule: &'static str, rel: &Path) -> bool {
    let in_serve_src = rel.starts_with("crates/serve/src");
    let in_client_src = rel.starts_with("crates/client/src");
    match rule {
        // The PR-4/PR-5 bug class lives in the serving layer.
        rules::RULE_GUARD => in_serve_src,
        // Burn-down scope: the hot serving path and the client library.
        // CLI/bench/example code may still unwrap.
        rules::RULE_UNWRAP => in_serve_src || in_client_src,
        // Everything scanned must follow the one poison policy.
        rules::RULE_POISON => true,
        // The flat-layout guarantee is an index-crate invariant.
        rules::RULE_BOXNODE => rel.starts_with("crates/index/src"),
        // R3 and R6 are cross-file; handled separately in `analyze`.
        rules::RULE_WIRE | rules::RULE_METRIC => false,
        _ => false,
    }
}

/// The two file sets R3 diffs: the serve-side protocol implementation
/// and the client re-implementation.
const WIRE_SERVER_FILES: &[&str] = &["crates/serve/src/protocol.rs", "crates/serve/src/tcp.rs"];
const WIRE_CLIENT_FILES: &[&str] = &["crates/client/src/lib.rs"];

/// Options for an analysis run.
pub struct Options {
    /// Rule ids to run (defaults to all).
    pub rules: Vec<&'static str>,
    /// Run R3 (needs the fixed server/client file pairing; only
    /// meaningful for workspace runs, or fixture trees shaped like one).
    pub wire: bool,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            rules: ALL_RULES.to_vec(),
            wire: true,
        }
    }
}

/// Analyzes the workspace rooted at `root`.
///
/// # Errors
/// Propagates I/O errors from walking or reading the source tree.
pub fn analyze_workspace(root: &Path, opts: &Options) -> std::io::Result<Report> {
    let rels = workspace_files(root)?;
    let mut sources = Vec::with_capacity(rels.len());
    for rel in rels {
        sources.push(read_and_lex(root, rel)?);
    }
    Ok(analyze(&sources, opts))
}

/// Analyzes an explicit list of files (paths used verbatim in output).
/// Scoping is disabled: every requested rule runs on every file, and R3
/// runs only if the set contains both a `protocol`-named and a
/// `client`-named file (fixture convention).
///
/// # Errors
/// Propagates I/O errors from reading the files.
pub fn analyze_files(paths: &[PathBuf], opts: &Options) -> std::io::Result<Report> {
    let mut sources = Vec::with_capacity(paths.len());
    for p in paths {
        let src = std::fs::read_to_string(p)?;
        sources.push(SourceFile {
            path: p.clone(),
            rel: p.clone(),
            lex: lexer::lex(&src),
        });
    }
    Ok(analyze_adhoc(&sources, opts))
}

fn analyze(sources: &[SourceFile], opts: &Options) -> Report {
    let mut raw: Vec<Finding> = Vec::new();
    for sf in sources {
        for rule in &opts.rules {
            if rule_applies(rule, &sf.rel) {
                raw.extend(run_rule(rule, &sf.path, &sf.lex.tokens));
            }
        }
    }
    if opts.wire && opts.rules.contains(&rules::RULE_WIRE) {
        let pick = |names: &[&str]| -> Vec<(PathBuf, Vec<Token>)> {
            sources
                .iter()
                .filter(|sf| names.iter().any(|n| sf.rel == Path::new(n)))
                .map(|sf| (sf.path.clone(), sf.lex.tokens.clone()))
                .collect()
        };
        let server = pick(WIRE_SERVER_FILES);
        let client = pick(WIRE_CLIENT_FILES);
        if !server.is_empty() && !client.is_empty() {
            raw.extend(rules::wire_grammar(&server, &client));
        }
    }
    if opts.rules.contains(&rules::RULE_METRIC) {
        raw.extend(rules::metric_name_discipline(&borrow_all(sources)));
    }
    apply_pragmas(sources, raw)
}

/// Borrows every source as the `(path, tokens)` pair the cross-file
/// rules take.
fn borrow_all(sources: &[SourceFile]) -> Vec<(&Path, &[Token])> {
    sources
        .iter()
        .map(|sf| (sf.path.as_path(), sf.lex.tokens.as_slice()))
        .collect()
}

fn analyze_adhoc(sources: &[SourceFile], opts: &Options) -> Report {
    let mut raw: Vec<Finding> = Vec::new();
    for sf in sources {
        for rule in &opts.rules {
            if *rule != rules::RULE_WIRE {
                raw.extend(run_rule(rule, &sf.path, &sf.lex.tokens));
            }
        }
    }
    if opts.wire && opts.rules.contains(&rules::RULE_WIRE) {
        let name_has = |sf: &&SourceFile, frag: &str| {
            sf.rel
                .file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.contains(frag))
        };
        let server: Vec<_> = sources
            .iter()
            .filter(|sf| name_has(sf, "protocol") || name_has(sf, "server"))
            .map(|sf| (sf.path.clone(), sf.lex.tokens.clone()))
            .collect();
        let client: Vec<_> = sources
            .iter()
            .filter(|sf| name_has(sf, "client"))
            .map(|sf| (sf.path.clone(), sf.lex.tokens.clone()))
            .collect();
        if !server.is_empty() && !client.is_empty() {
            raw.extend(rules::wire_grammar(&server, &client));
        }
    }
    if opts.rules.contains(&rules::RULE_METRIC) {
        raw.extend(rules::metric_name_discipline(&borrow_all(sources)));
    }
    apply_pragmas(sources, raw)
}

fn run_rule(rule: &'static str, path: &Path, toks: &[Token]) -> Vec<Finding> {
    match rule {
        rules::RULE_GUARD => rules::guard_across_blocking(path, toks),
        rules::RULE_UNWRAP => rules::unwrap_nontest(path, toks),
        rules::RULE_POISON => rules::lock_poison_policy(path, toks),
        rules::RULE_BOXNODE => rules::index_no_box_node(path, toks),
        _ => Vec::new(),
    }
}

/// Applies `allow` pragmas to the raw findings: a pragma on the finding
/// line (or an own-line pragma covering the next line) with a matching
/// rule id suppresses the finding. Unknown-rule and unused pragmas,
/// plus the lexer's malformed-pragma notes, become `pragma` findings.
fn apply_pragmas(sources: &[SourceFile], raw: Vec<Finding>) -> Report {
    let mut report = Report {
        files_scanned: sources.len(),
        ..Report::default()
    };
    // (path, rule, covered-line) → (pragma index within file, reason)
    let mut allow: BTreeMap<(PathBuf, String, u32), (usize, String)> = BTreeMap::new();
    let mut used: BTreeMap<(PathBuf, usize), bool> = BTreeMap::new();
    for sf in sources {
        for (idx, p) in sf.lex.pragmas.iter().enumerate() {
            report.pragma_count += 1;
            if !ALL_RULES.contains(&p.rule.as_str()) {
                report.findings.push(Finding {
                    file: sf.path.clone(),
                    line: p.line,
                    rule: rules::RULE_PRAGMA,
                    msg: format!(
                        "pragma names unknown rule `{}` (known: {})",
                        p.rule,
                        ALL_RULES.join(", ")
                    ),
                });
                continue;
            }
            used.insert((sf.path.clone(), idx), false);
            let covered = if p.own_line { p.line + 1 } else { p.line };
            allow.insert(
                (sf.path.clone(), p.rule.clone(), covered),
                (idx, p.reason.clone()),
            );
        }
        for (line, msg) in &sf.lex.pragma_errors {
            report.findings.push(Finding {
                file: sf.path.clone(),
                line: *line,
                rule: rules::RULE_PRAGMA,
                msg: msg.clone(),
            });
        }
    }
    for f in raw {
        let key = (f.file.clone(), f.rule.to_string(), f.line);
        if let Some((idx, reason)) = allow.get(&key) {
            used.insert((f.file.clone(), *idx), true);
            report.suppressed.push((f, reason.clone()));
        } else {
            report.findings.push(f);
        }
    }
    for ((path, idx), was_used) in &used {
        if !was_used {
            // Recover the pragma for its line/rule.
            if let Some(sf) = sources.iter().find(|s| &s.path == path) {
                let p = &sf.lex.pragmas[*idx];
                report.findings.push(Finding {
                    file: path.clone(),
                    line: p.line,
                    rule: rules::RULE_PRAGMA,
                    msg: format!(
                        "unused pragma: allow({}) suppresses nothing on its line — remove it",
                        p.rule
                    ),
                });
            }
        }
    }
    report
        .findings
        .sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    report
}
