//! `rms-analyze` — project-specific static analysis for the krms
//! workspace: a hand-rolled lexer, a lightweight block-tree parser, and
//! an intraprocedural dataflow layer (no full AST, no dependencies)
//! behind ten lint rules encoding the concurrency, durability,
//! wire-protocol, and memory-layout invariants this codebase has
//! historically broken in review-invisible ways.
//!
//! Rules (see [`rules::RULE_DESCRIPTIONS`] / `--list-rules` for the
//! authoritative catalog):
//!
//! | id | checks |
//! |----|--------|
//! | `guard-across-blocking` | no lock guard alive across a blocking call, through scopes/`drop()`/may-block local calls; unbounded `Sender::send` exempt |
//! | `unwrap-nontest` | no `.unwrap()`/`.expect(…)`/`panic!`-family in non-test serve/client/metrics code |
//! | `wire-grammar` | server and client wire vocabularies must match exactly |
//! | `lock-poison-policy` | lock results go through `recover_poisoned`, not ad-hoc unwraps |
//! | `index-no-box-node` | no per-node `Box` allocations in `crates/index/src` |
//! | `metric-name-discipline` | literal `rms_<subsystem>_` snake_case names, one owning call site per family |
//! | `lock-order` | the serve-layer lock-acquisition-order graph stays acyclic |
//! | `wal-tag-coverage` | every WAL tag has encode + replay arms; every `Op::` variant has a tag |
//! | `epoch-monotonic-publish` | `*… .write() … = …` only inside sanctioned publish helpers |
//! | `atomic-ordering-discipline` | every `Ordering::` use matches the file's declared atomic-policy table |
//!
//! Any finding can be suppressed in place with
//! `// rms-analyze: allow(<rule-id>, "<reason>")` — on the offending
//! line, or on its own line covering the next line. The reason is
//! mandatory; unused or malformed pragmas are findings themselves
//! (rule id `pragma`). Atomic policies are declared per file with
//! `// rms-analyze: atomic-policy(<name>: <Ordering>|…, …)`.
//!
//! Every finding carries a stable fingerprint (FNV-1a over rule +
//! workspace-relative path + trimmed source-line text + occurrence
//! index), exposed by `--format json` and consumed by `--baseline` —
//! fingerprints survive unrelated line-number churn, so a rule can land
//! before its burn-down completes.

pub mod flow;
pub mod lexer;
pub mod parse;
pub mod rules;

use lexer::{LexOutput, Token};
use rules::Finding;
use std::collections::{BTreeMap, BTreeSet};
use std::path::{Path, PathBuf};

pub use rules::{
    ALL_RULES, RULE_ATOMIC, RULE_BOXNODE, RULE_DESCRIPTIONS, RULE_EPOCH, RULE_GUARD,
    RULE_LOCKORDER, RULE_METRIC, RULE_POISON, RULE_PRAGMA, RULE_UNWRAP, RULE_WALTAG, RULE_WIRE,
};

/// The outcome of an analysis run.
#[derive(Debug, Default)]
pub struct Report {
    /// Surviving findings, in file-then-line order. Nonzero ⇒ exit 1.
    pub findings: Vec<Finding>,
    /// Findings suppressed by a pragma, with the pragma's reason —
    /// reported (to stderr) but not fatal.
    pub suppressed: Vec<(Finding, String)>,
    /// Total number of well-formed `allow` pragmas seen.
    pub pragma_count: usize,
    /// Number of files lexed.
    pub files_scanned: usize,
}

/// A lexed source file ready for rule application.
struct SourceFile {
    path: PathBuf,
    rel: PathBuf,
    src: String,
    lex: LexOutput,
}

fn read_and_lex(root: &Path, rel: PathBuf) -> std::io::Result<SourceFile> {
    let path = root.join(&rel);
    let src = std::fs::read_to_string(&path)?;
    let lex = lexer::lex(&src);
    Ok(SourceFile {
        path,
        rel,
        src,
        lex,
    })
}

/// Collects the `.rs` files under `dir` (recursively), as paths
/// relative to `root`. Sorted for deterministic output.
fn collect_rs(root: &Path, dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    let abs = root.join(dir);
    if !abs.is_dir() {
        return Ok(());
    }
    let mut entries: Vec<_> = std::fs::read_dir(&abs)?
        .collect::<Result<Vec<_>, _>>()?
        .into_iter()
        .map(|e| e.path())
        .collect();
    entries.sort();
    for p in entries {
        let rel = dir.join(p.file_name().unwrap_or_default());
        if p.is_dir() {
            collect_rs(root, &rel, out)?;
        } else if p.extension().is_some_and(|e| e == "rs") {
            out.push(rel);
        }
    }
    Ok(())
}

/// The workspace file set `--workspace` scans: every crate's `src/`
/// plus `examples/` and `benches/`, and the root binary's `src/`.
/// `vendor/` (vendored stand-in dependencies) is deliberately excluded
/// — we lint our code, not our stand-ins. Fixture trees under
/// `tests/fixtures/` are likewise excluded (they violate rules on
/// purpose), but regular integration tests are scanned.
fn workspace_files(root: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut files = Vec::new();
    collect_rs(root, Path::new("src"), &mut files)?;
    collect_rs(root, Path::new("examples"), &mut files)?;
    collect_rs(root, Path::new("benches"), &mut files)?;
    let crates = root.join("crates");
    if crates.is_dir() {
        let mut members: Vec<_> = std::fs::read_dir(&crates)?
            .collect::<Result<Vec<_>, _>>()?
            .into_iter()
            .map(|e| e.path())
            .collect();
        members.sort();
        for m in members {
            let Some(name) = m.file_name().map(std::ffi::OsStr::to_os_string) else {
                continue;
            };
            let base = Path::new("crates").join(&name);
            collect_rs(root, &base.join("src"), &mut files)?;
            collect_rs(root, &base.join("examples"), &mut files)?;
            collect_rs(root, &base.join("benches"), &mut files)?;
            // Integration tests, but never tests/fixtures/.
            let tests = base.join("tests");
            if root.join(&tests).is_dir() {
                let mut sub = Vec::new();
                collect_rs(root, &tests, &mut sub)?;
                files.extend(
                    sub.into_iter()
                        .filter(|p| !p.starts_with(tests.join("fixtures"))),
                );
            }
        }
    }
    Ok(files)
}

/// Per-rule file scoping for a workspace run. Paths are relative,
/// `/`-separated as produced by [`workspace_files`].
fn rule_applies(rule: &'static str, rel: &Path) -> bool {
    let in_serve_src = rel.starts_with("crates/serve/src");
    let in_client_src = rel.starts_with("crates/client/src");
    let in_metrics_src = rel.starts_with("crates/metrics/src");
    let in_net_src = rel.starts_with("crates/net/src");
    match rule {
        // The PR-4/PR-5 bug class lives in the serving layer — and,
        // since PR 10, in the evented network layer under it.
        rules::RULE_GUARD => in_serve_src || in_net_src,
        // The reactor dispatch path: the event loop itself plus the
        // serve-side handler its callbacks drive. The orchestration
        // half (tcp.rs) legitimately blocks and stays out of scope.
        rules::RULE_REACTOR => in_net_src || rel == Path::new("crates/serve/src/net.rs"),
        // Burn-down scope: the hot serving path, the client library,
        // and (since PR 9) the metrics registry the serving path calls
        // into. CLI/bench/example code may still unwrap.
        rules::RULE_UNWRAP => in_serve_src || in_client_src || in_metrics_src,
        // Everything scanned must follow the one poison policy.
        rules::RULE_POISON => true,
        // The flat-layout guarantee is an index-crate invariant.
        rules::RULE_BOXNODE => rel.starts_with("crates/index/src"),
        // Snapshot publication sites live in the serving layer.
        rules::RULE_EPOCH => in_serve_src,
        // Atomics policy covers the serving layer and the metrics
        // hot-path counters.
        rules::RULE_ATOMIC => in_serve_src || in_metrics_src,
        // R3, R6, R7, R8 are cross-file; handled separately in `analyze`.
        rules::RULE_WIRE | rules::RULE_METRIC | rules::RULE_LOCKORDER | rules::RULE_WALTAG => false,
        _ => false,
    }
}

/// The two file sets R3 diffs: the serve-side protocol implementation
/// and the client re-implementation.
const WIRE_SERVER_FILES: &[&str] = &[
    "crates/serve/src/protocol.rs",
    "crates/serve/src/tcp.rs",
    "crates/serve/src/net.rs",
];
const WIRE_CLIENT_FILES: &[&str] = &["crates/client/src/lib.rs"];
/// The WAL implementation R8 audits against the wire files.
const WAL_FILES: &[&str] = &["crates/serve/src/wal.rs"];

/// Options for an analysis run.
pub struct Options {
    /// Rule ids to run (defaults to all).
    pub rules: Vec<&'static str>,
    /// Run R3 (needs the fixed server/client file pairing; only
    /// meaningful for workspace runs, or fixture trees shaped like one).
    pub wire: bool,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            rules: ALL_RULES.to_vec(),
            wire: true,
        }
    }
}

/// Analyzes the workspace rooted at `root`.
///
/// # Errors
/// Propagates I/O errors from walking or reading the source tree.
pub fn analyze_workspace(root: &Path, opts: &Options) -> std::io::Result<Report> {
    let rels = workspace_files(root)?;
    let mut sources = Vec::with_capacity(rels.len());
    for rel in rels {
        sources.push(read_and_lex(root, rel)?);
    }
    Ok(analyze(&sources, opts))
}

/// Analyzes an explicit list of files (paths used verbatim in output).
/// Scoping is disabled: every requested per-file rule runs on every
/// file; the cross-file rules pair files by name fragments (fixture
/// convention): R3 needs a `protocol`/`server` and a `client` file, R8
/// a `wal` file (plus optionally `protocol`/`server` ones), and R7 runs
/// over the whole set.
///
/// # Errors
/// Propagates I/O errors from reading the files.
pub fn analyze_files(paths: &[PathBuf], opts: &Options) -> std::io::Result<Report> {
    let mut sources = Vec::with_capacity(paths.len());
    for p in paths {
        let src = std::fs::read_to_string(p)?;
        let lex = lexer::lex(&src);
        sources.push(SourceFile {
            path: p.clone(),
            rel: p.clone(),
            src,
            lex,
        });
    }
    Ok(analyze_adhoc(&sources, opts))
}

fn analyze(sources: &[SourceFile], opts: &Options) -> Report {
    let mut raw: Vec<Finding> = Vec::new();
    for sf in sources {
        for rule in &opts.rules {
            if rule_applies(rule, &sf.rel) {
                raw.extend(run_rule(rule, &sf.path, &sf.lex));
            }
        }
    }
    let pick = |names: &[&str]| -> Vec<(PathBuf, Vec<Token>)> {
        sources
            .iter()
            .filter(|sf| names.iter().any(|n| sf.rel == Path::new(n)))
            .map(|sf| (sf.path.clone(), sf.lex.tokens.clone()))
            .collect()
    };
    if opts.wire && opts.rules.contains(&rules::RULE_WIRE) {
        let server = pick(WIRE_SERVER_FILES);
        let client = pick(WIRE_CLIENT_FILES);
        if !server.is_empty() && !client.is_empty() {
            raw.extend(rules::wire_grammar(&server, &client));
        }
    }
    if opts.rules.contains(&rules::RULE_WALTAG) {
        let wal = pick(WAL_FILES);
        let wire = pick(WIRE_SERVER_FILES);
        if !wal.is_empty() {
            raw.extend(rules::wal_tag_coverage(&wal, &wire));
        }
    }
    if opts.rules.contains(&rules::RULE_LOCKORDER) {
        let serve: Vec<(&Path, &[Token])> = sources
            .iter()
            .filter(|sf| sf.rel.starts_with("crates/serve/src"))
            .map(|sf| (sf.path.as_path(), sf.lex.tokens.as_slice()))
            .collect();
        raw.extend(flow::lock_order(&serve));
    }
    if opts.rules.contains(&rules::RULE_METRIC) {
        raw.extend(rules::metric_name_discipline(&borrow_all(sources)));
    }
    apply_pragmas(sources, raw, &opts.rules)
}

/// Borrows every source as the `(path, tokens)` pair the cross-file
/// rules take.
fn borrow_all(sources: &[SourceFile]) -> Vec<(&Path, &[Token])> {
    sources
        .iter()
        .map(|sf| (sf.path.as_path(), sf.lex.tokens.as_slice()))
        .collect()
}

fn analyze_adhoc(sources: &[SourceFile], opts: &Options) -> Report {
    let name_has = |sf: &&SourceFile, frag: &str| {
        sf.rel
            .file_name()
            .and_then(|n| n.to_str())
            .is_some_and(|n| n.contains(frag))
    };
    let mut raw: Vec<Finding> = Vec::new();
    for sf in sources {
        for rule in &opts.rules {
            let cross_file = matches!(
                *rule,
                rules::RULE_WIRE | rules::RULE_LOCKORDER | rules::RULE_WALTAG
            );
            // R11 bans calls that are perfectly ordinary outside the
            // reactor dispatch path, so even ad hoc it only runs on
            // files that opt in by name.
            if *rule == rules::RULE_REACTOR && !name_has(&sf, "reactor") {
                continue;
            }
            if !cross_file {
                raw.extend(run_rule(rule, &sf.path, &sf.lex));
            }
        }
    }
    let pick_frag = |frags: &[&str]| -> Vec<(PathBuf, Vec<Token>)> {
        sources
            .iter()
            .filter(|sf| frags.iter().any(|f| name_has(sf, f)))
            .map(|sf| (sf.path.clone(), sf.lex.tokens.clone()))
            .collect()
    };
    if opts.wire && opts.rules.contains(&rules::RULE_WIRE) {
        let server = pick_frag(&["protocol", "server"]);
        let client = pick_frag(&["client"]);
        if !server.is_empty() && !client.is_empty() {
            raw.extend(rules::wire_grammar(&server, &client));
        }
    }
    if opts.rules.contains(&rules::RULE_WALTAG) {
        let wal = pick_frag(&["wal"]);
        let wire = pick_frag(&["protocol", "server"]);
        if !wal.is_empty() {
            raw.extend(rules::wal_tag_coverage(&wal, &wire));
        }
    }
    if opts.rules.contains(&rules::RULE_LOCKORDER) {
        raw.extend(flow::lock_order(&borrow_all(sources)));
    }
    if opts.rules.contains(&rules::RULE_METRIC) {
        raw.extend(rules::metric_name_discipline(&borrow_all(sources)));
    }
    apply_pragmas(sources, raw, &opts.rules)
}

fn run_rule(rule: &'static str, path: &Path, lex: &LexOutput) -> Vec<Finding> {
    match rule {
        rules::RULE_GUARD => rules::guard_across_blocking(path, &lex.tokens),
        rules::RULE_UNWRAP => rules::unwrap_nontest(path, &lex.tokens),
        rules::RULE_POISON => rules::lock_poison_policy(path, &lex.tokens),
        rules::RULE_BOXNODE => rules::index_no_box_node(path, &lex.tokens),
        rules::RULE_EPOCH => rules::epoch_monotonic_publish(path, &lex.tokens),
        rules::RULE_ATOMIC => {
            rules::atomic_ordering_discipline(path, &lex.tokens, &lex.atomic_policies)
        }
        rules::RULE_REACTOR => rules::reactor_no_block(path, &lex.tokens),
        _ => Vec::new(),
    }
}

/// Applies `allow` pragmas to the raw findings: a pragma on the finding
/// line (or an own-line pragma covering the next line) with a matching
/// rule id suppresses the finding. Unknown-rule and unused pragmas,
/// plus the lexer's malformed-pragma notes, become `pragma` findings.
/// A pragma for a known rule that is not in `active` (e.g. under
/// `--rules lock-order`) is left alone: its rule never ran, so whether
/// it suppresses anything cannot be judged on this pass.
/// Surviving findings leave with their fingerprints filled in.
fn apply_pragmas(sources: &[SourceFile], raw: Vec<Finding>, active: &[&str]) -> Report {
    let mut report = Report {
        files_scanned: sources.len(),
        ..Report::default()
    };
    // (path, rule, covered-line) → (pragma index within file, reason)
    let mut allow: BTreeMap<(PathBuf, String, u32), (usize, String)> = BTreeMap::new();
    let mut used: BTreeMap<(PathBuf, usize), bool> = BTreeMap::new();
    for sf in sources {
        for (idx, p) in sf.lex.pragmas.iter().enumerate() {
            report.pragma_count += 1;
            if !ALL_RULES.contains(&p.rule.as_str()) {
                report.findings.push(Finding::new(
                    &sf.path,
                    p.line,
                    rules::RULE_PRAGMA,
                    format!(
                        "pragma names unknown rule `{}` (known: {})",
                        p.rule,
                        ALL_RULES.join(", ")
                    ),
                ));
                continue;
            }
            if !active.contains(&p.rule.as_str()) {
                continue;
            }
            used.insert((sf.path.clone(), idx), false);
            let covered = if p.own_line { p.line + 1 } else { p.line };
            allow.insert(
                (sf.path.clone(), p.rule.clone(), covered),
                (idx, p.reason.clone()),
            );
        }
        for (line, msg) in &sf.lex.pragma_errors {
            report.findings.push(Finding::new(
                &sf.path,
                *line,
                rules::RULE_PRAGMA,
                msg.clone(),
            ));
        }
    }
    for f in raw {
        let key = (f.file.clone(), f.rule.to_string(), f.line);
        if let Some((idx, reason)) = allow.get(&key) {
            used.insert((f.file.clone(), *idx), true);
            report.suppressed.push((f, reason.clone()));
        } else {
            report.findings.push(f);
        }
    }
    for ((path, idx), was_used) in &used {
        if !was_used {
            // Recover the pragma for its line/rule.
            if let Some(sf) = sources.iter().find(|s| &s.path == path) {
                let p = &sf.lex.pragmas[*idx];
                report.findings.push(Finding::new(
                    path,
                    p.line,
                    rules::RULE_PRAGMA,
                    format!(
                        "unused pragma: allow({}) suppresses nothing on its line — remove it",
                        p.rule
                    ),
                ));
            }
        }
    }
    report
        .findings
        .sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    fingerprint_findings(sources, &mut report.findings);
    report
}

/// FNV-1a 64 over a sequence of parts, with a separator fold between
/// parts so `("ab","c")` and `("a","bc")` hash differently.
fn fnv1a(parts: &[&[u8]]) -> u64 {
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for part in parts {
        for &b in *part {
            h ^= u64::from(b);
            h = h.wrapping_mul(PRIME);
        }
        h ^= 0xff;
        h = h.wrapping_mul(PRIME);
    }
    h
}

/// Fills each finding's stable fingerprint: FNV-1a over the rule id,
/// the workspace-relative path, the *trimmed text* of the offending
/// source line, and an occurrence index (disambiguating identical lines
/// under the same rule). Line *numbers* are deliberately not hashed —
/// unrelated churn above a finding must not change its identity, or
/// `--baseline` files would rot instantly.
fn fingerprint_findings(sources: &[SourceFile], findings: &mut [Finding]) {
    let by_path: BTreeMap<&Path, &SourceFile> =
        sources.iter().map(|sf| (sf.path.as_path(), sf)).collect();
    let mut seen: BTreeMap<(&'static str, String, String), u32> = BTreeMap::new();
    for f in findings.iter_mut() {
        let (rel, text) = match by_path.get(f.file.as_path()) {
            Some(sf) => (
                sf.rel.display().to_string(),
                sf.src
                    .lines()
                    .nth(f.line.saturating_sub(1) as usize)
                    .unwrap_or("")
                    .trim()
                    .to_string(),
            ),
            None => (f.file.display().to_string(), String::new()),
        };
        let idx = seen.entry((f.rule, rel.clone(), text.clone())).or_insert(0);
        let n = *idx;
        *idx += 1;
        f.fingerprint = format!(
            "{:016x}",
            fnv1a(&[
                f.rule.as_bytes(),
                rel.as_bytes(),
                text.as_bytes(),
                &n.to_le_bytes(),
            ])
        );
    }
}

/// Parses a baseline file into the fingerprint set it suppresses.
/// Accepts two shapes, freely mixed: the `--format json` output itself
/// (every `"fingerprint":"…"` value is taken), and plain text with one
/// bare 16-hex-digit fingerprint per line (`#` comments and blank lines
/// ignored) — so `rms-analyze --workspace --format json > baseline.json`
/// round-trips directly.
pub fn parse_baseline(text: &str) -> BTreeSet<String> {
    let mut set = BTreeSet::new();
    let mut rest = text;
    while let Some(pos) = rest.find("\"fingerprint\"") {
        rest = &rest[pos + "\"fingerprint\"".len()..];
        let Some(q1) = rest.find('"') else { break };
        let after = &rest[q1 + 1..];
        let Some(q2) = after.find('"') else { break };
        let fp = &after[..q2];
        if fp.len() == 16 && fp.chars().all(|c| c.is_ascii_hexdigit()) {
            set.insert(fp.to_string());
        }
        rest = &after[q2..];
    }
    for line in text.lines() {
        let line = line.trim();
        if line.len() == 16 && line.chars().all(|c| c.is_ascii_hexdigit()) {
            set.insert(line.to_string());
        }
    }
    set
}
