//! CLI for `rms-analyze`.
//!
//! ```text
//! rms-analyze --workspace [ROOT]       # scan the whole workspace tree
//! rms-analyze [--rules r1,r2] FILE...  # scan explicit files (all rules, no scoping)
//! rms-analyze --list-rules             # print the rule catalog and exit
//! ```
//!
//! Options:
//!
//! * `--format text|json` — `text` (default) prints findings to stdout
//!   as `file:line rule-id message`; `json` prints one machine-readable
//!   object with stable per-finding fingerprints.
//! * `--baseline FILE` — suppress findings whose fingerprint appears in
//!   `FILE` (either a previous `--format json` output or bare
//!   fingerprint lines). Baselined findings are reported to stderr and
//!   are not fatal.
//!
//! The summary (counts, suppressions) goes to stderr. Exit 0 ⇔ no
//! surviving findings.

use rms_analyze::{
    analyze_files, analyze_workspace, parse_baseline, Options, Report, ALL_RULES, RULE_DESCRIPTIONS,
};
use std::path::PathBuf;
use std::process::ExitCode;

fn usage() -> ! {
    eprintln!(
        "usage: rms-analyze --workspace [ROOT]\n       rms-analyze [--rules LIST] FILE...\n       \
         rms-analyze --list-rules\n\noptions: --format text|json, --baseline FILE\n\n\
         rules: {}",
        ALL_RULES.join(", ")
    );
    std::process::exit(2);
}

fn parse_rules(list: &str) -> Vec<&'static str> {
    let mut out = Vec::new();
    for name in list.split(',') {
        let name = name.trim();
        match ALL_RULES.iter().find(|r| **r == name) {
            Some(r) => out.push(*r),
            None => {
                eprintln!(
                    "rms-analyze: unknown rule `{name}` (known: {})",
                    ALL_RULES.join(", ")
                );
                std::process::exit(2);
            }
        }
    }
    out
}

/// Escapes a string for a JSON string literal.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Renders the report as one JSON object on stdout. Shape:
/// `{"findings":[{"file","line","rule","message","fingerprint"}…],
///   "files_scanned":N,"suppressed":N,"baselined":N}`.
fn print_json(report: &Report, baselined: usize) {
    let mut out = String::from("{\"findings\":[");
    for (i, f) in report.findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"file\":\"{}\",\"line\":{},\"rule\":\"{}\",\"message\":\"{}\",\
             \"fingerprint\":\"{}\"}}",
            json_escape(&f.file.display().to_string()),
            f.line,
            json_escape(f.rule),
            json_escape(&f.msg),
            json_escape(&f.fingerprint),
        ));
    }
    out.push_str(&format!(
        "],\"files_scanned\":{},\"suppressed\":{},\"baselined\":{}}}",
        report.files_scanned,
        report.suppressed.len(),
        baselined,
    ));
    println!("{out}");
}

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1).peekable();
    let mut workspace = false;
    let mut root: Option<PathBuf> = None;
    let mut rules: Vec<&'static str> = ALL_RULES.to_vec();
    let mut files: Vec<PathBuf> = Vec::new();
    let mut json = false;
    let mut baseline: Option<PathBuf> = None;
    while let Some(a) = args.next() {
        match a.as_str() {
            "--workspace" => workspace = true,
            "--rules" => match args.next() {
                Some(list) => rules = parse_rules(&list),
                None => usage(),
            },
            "--format" => match args.next().as_deref() {
                Some("text") => json = false,
                Some("json") => json = true,
                _ => usage(),
            },
            "--baseline" => match args.next() {
                Some(f) => baseline = Some(PathBuf::from(f)),
                None => usage(),
            },
            "--list-rules" => {
                for (rule, desc) in RULE_DESCRIPTIONS {
                    println!("{rule}\t{desc}");
                }
                return ExitCode::SUCCESS;
            }
            "--help" | "-h" => usage(),
            _ if a.starts_with("--") => usage(),
            _ => {
                if workspace && root.is_none() && files.is_empty() {
                    root = Some(PathBuf::from(a));
                } else {
                    files.push(PathBuf::from(a));
                }
            }
        }
    }

    let opts = Options { rules, wire: true };
    let result = if workspace {
        if !files.is_empty() {
            usage();
        }
        let root = root
            .or_else(|| std::env::var_os("CARGO_MANIFEST_DIR").map(PathBuf::from))
            .map(|p| {
                // When invoked via `cargo run -p rms-analyze`, the
                // manifest dir is crates/analyze — hop to the root.
                if p.join("Cargo.toml").is_file() && p.ends_with("crates/analyze") {
                    p.parent()
                        .and_then(std::path::Path::parent)
                        .map_or(p.clone(), std::path::Path::to_path_buf)
                } else {
                    p
                }
            })
            .unwrap_or_else(|| PathBuf::from("."));
        analyze_workspace(&root, &opts)
    } else {
        if files.is_empty() {
            usage();
        }
        analyze_files(&files, &opts)
    };

    let mut report: Report = match result {
        Ok(r) => r,
        Err(e) => {
            eprintln!("rms-analyze: {e}");
            return ExitCode::from(2);
        }
    };

    let mut baselined: Vec<_> = Vec::new();
    if let Some(path) = &baseline {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("rms-analyze: baseline {}: {e}", path.display());
                return ExitCode::from(2);
            }
        };
        let set = parse_baseline(&text);
        let (kept, skipped): (Vec<_>, Vec<_>) = report
            .findings
            .drain(..)
            .partition(|f| !set.contains(&f.fingerprint));
        report.findings = kept;
        baselined = skipped;
    }

    if json {
        print_json(&report, baselined.len());
    } else {
        for f in &report.findings {
            println!("{f}");
        }
    }
    for f in &baselined {
        eprintln!("rms-analyze: baselined {f}");
    }
    for (f, reason) in &report.suppressed {
        eprintln!("rms-analyze: suppressed {f} (allowed: {reason})");
    }
    eprintln!(
        "rms-analyze: {} file(s), {} finding(s), {} suppressed by {} pragma(s)",
        report.files_scanned,
        report.findings.len(),
        report.suppressed.len(),
        report.pragma_count,
    );
    if report.findings.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
