//! CLI for `rms-analyze`.
//!
//! ```text
//! rms-analyze --workspace [ROOT]       # scan the whole workspace tree
//! rms-analyze [--rules r1,r2] FILE...  # scan explicit files (all rules, no scoping)
//! ```
//!
//! Findings go to stdout as `file:line rule-id message`; the summary
//! (counts, suppressions) goes to stderr. Exit 0 ⇔ no findings.

use rms_analyze::{analyze_files, analyze_workspace, Options, Report, ALL_RULES};
use std::path::PathBuf;
use std::process::ExitCode;

fn usage() -> ! {
    eprintln!(
        "usage: rms-analyze --workspace [ROOT]\n       rms-analyze [--rules LIST] FILE...\n\n\
         rules: {}",
        ALL_RULES.join(", ")
    );
    std::process::exit(2);
}

fn parse_rules(list: &str) -> Vec<&'static str> {
    let mut out = Vec::new();
    for name in list.split(',') {
        let name = name.trim();
        match ALL_RULES.iter().find(|r| **r == name) {
            Some(r) => out.push(*r),
            None => {
                eprintln!(
                    "rms-analyze: unknown rule `{name}` (known: {})",
                    ALL_RULES.join(", ")
                );
                std::process::exit(2);
            }
        }
    }
    out
}

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1).peekable();
    let mut workspace = false;
    let mut root: Option<PathBuf> = None;
    let mut rules: Vec<&'static str> = ALL_RULES.to_vec();
    let mut files: Vec<PathBuf> = Vec::new();
    while let Some(a) = args.next() {
        match a.as_str() {
            "--workspace" => workspace = true,
            "--rules" => match args.next() {
                Some(list) => rules = parse_rules(&list),
                None => usage(),
            },
            "--help" | "-h" => usage(),
            _ if a.starts_with("--") => usage(),
            _ => {
                if workspace && root.is_none() && files.is_empty() {
                    root = Some(PathBuf::from(a));
                } else {
                    files.push(PathBuf::from(a));
                }
            }
        }
    }

    let opts = Options { rules, wire: true };
    let result = if workspace {
        if !files.is_empty() {
            usage();
        }
        let root = root
            .or_else(|| std::env::var_os("CARGO_MANIFEST_DIR").map(PathBuf::from))
            .map(|p| {
                // When invoked via `cargo run -p rms-analyze`, the
                // manifest dir is crates/analyze — hop to the root.
                if p.join("Cargo.toml").is_file() && p.ends_with("crates/analyze") {
                    p.parent()
                        .and_then(std::path::Path::parent)
                        .map_or(p.clone(), std::path::Path::to_path_buf)
                } else {
                    p
                }
            })
            .unwrap_or_else(|| PathBuf::from("."));
        analyze_workspace(&root, &opts)
    } else {
        if files.is_empty() {
            usage();
        }
        analyze_files(&files, &opts)
    };

    let report: Report = match result {
        Ok(r) => r,
        Err(e) => {
            eprintln!("rms-analyze: {e}");
            return ExitCode::from(2);
        }
    };

    for f in &report.findings {
        println!("{f}");
    }
    for (f, reason) in &report.suppressed {
        eprintln!("rms-analyze: suppressed {f} (allowed: {reason})");
    }
    eprintln!(
        "rms-analyze: {} file(s), {} finding(s), {} suppressed by {} pragma(s)",
        report.files_scanned,
        report.findings.len(),
        report.suppressed.len(),
        report.pragma_count,
    );
    if report.findings.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
