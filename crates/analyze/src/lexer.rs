//! A small hand-rolled Rust lexer — tokens, string literals, comment and
//! `#[cfg(test)]` tracking — sufficient for the pattern-matching lints in
//! [`crate::rules`]. No AST: the toolchain is pinned stable with no
//! crates-io access, so there is no syn to lean on, and none of the rules
//! need more than token sequences plus brace-scope bookkeeping.
//!
//! Guarantees the rules rely on:
//!
//! * Comments and string/char literals never leak into `Ident`/`Punct`
//!   tokens, so `unwrap` inside a doc comment is not a finding.
//! * String literal *contents* are preserved as [`Tok::Str`] (the
//!   wire-grammar rule reads them).
//! * Every token carries `in_test`: `true` inside an item gated by
//!   `#[cfg(test)]` or `#[test]`. Test regions are balanced brace
//!   blocks, so a rule that skips `in_test` tokens keeps consistent
//!   brace-depth bookkeeping.
//! * `// rms-analyze: allow(<rule>, "<reason>")` pragma comments are
//!   parsed out (malformed ones are reported, not ignored).

/// One lexed token's payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Tok {
    /// An identifier or keyword (numbers are folded in here too — the
    /// rules only ever match known names, so the conflation is harmless).
    Ident(String),
    /// The raw contents of a string literal (escapes unresolved).
    Str(String),
    /// Any other single character.
    Punct(char),
}

/// One lexed token with its source position and test-code flag.
#[derive(Debug, Clone)]
pub struct Token {
    /// The token payload.
    pub tok: Tok,
    /// 1-based line the token starts on.
    pub line: u32,
    /// `true` inside `#[cfg(test)]` / `#[test]` items.
    pub in_test: bool,
}

/// A parsed `// rms-analyze: allow(<rule>, "<reason>")` comment.
#[derive(Debug, Clone)]
pub struct Pragma {
    /// 1-based line the pragma comment sits on.
    pub line: u32,
    /// The rule id being allowed.
    pub rule: String,
    /// The mandatory justification.
    pub reason: String,
    /// `true` when the comment is alone on its line (it then covers the
    /// next line instead of its own).
    pub own_line: bool,
}

/// One entry of a `// rms-analyze: atomic-policy(name: A|B, …)`
/// declaration: the atomic's field/binding name and the memory
/// orderings its accesses are allowed to use.
#[derive(Debug, Clone)]
pub struct AtomicPolicy {
    /// 1-based line of the declaring comment.
    pub line: u32,
    /// The atomic's receiver name (`state`, `shutdown`, …).
    pub name: String,
    /// The sanctioned `Ordering::` variants.
    pub orderings: Vec<String>,
}

/// The `std::sync::atomic::Ordering` variant names a policy may grant.
pub const ATOMIC_ORDERINGS: &[&str] = &["Relaxed", "Acquire", "Release", "AcqRel", "SeqCst"];

/// Everything the lexer extracted from one source file.
#[derive(Debug, Default)]
pub struct LexOutput {
    /// The token stream, in source order.
    pub tokens: Vec<Token>,
    /// Well-formed suppression pragmas.
    pub pragmas: Vec<Pragma>,
    /// Malformed pragma comments: `(line, what is wrong)`.
    pub pragma_errors: Vec<(u32, String)>,
    /// Per-file atomic ordering policy entries, in declaration order.
    pub atomic_policies: Vec<AtomicPolicy>,
}

const PRAGMA_MARKER: &str = "rms-analyze:";

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_char(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Lexes one Rust source file. Never fails: unterminated constructs are
/// consumed to end-of-file (the workspace compiles, so real inputs are
/// well-formed; fixtures may be fragments).
pub fn lex(src: &str) -> LexOutput {
    Lexer {
        c: src.chars().collect(),
        i: 0,
        line: 1,
        line_has_code: false,
        out: LexOutput::default(),
    }
    .run()
}

struct Lexer {
    c: Vec<char>,
    i: usize,
    line: u32,
    /// Whether a token was emitted on the current line (decides whether a
    /// pragma comment is `own_line`).
    line_has_code: bool,
    out: LexOutput,
}

impl Lexer {
    fn peek(&self, ahead: usize) -> Option<char> {
        self.c.get(self.i + ahead).copied()
    }

    fn run(mut self) -> LexOutput {
        while let Some(ch) = self.peek(0) {
            match ch {
                '\n' => {
                    self.line += 1;
                    self.line_has_code = false;
                    self.i += 1;
                }
                _ if ch.is_whitespace() => self.i += 1,
                '/' if self.peek(1) == Some('/') => self.line_comment(),
                '/' if self.peek(1) == Some('*') => self.block_comment(),
                '"' => self.string_literal(),
                'r' if matches!(self.peek(1), Some('"' | '#')) => self.raw_string(1),
                'b' if self.peek(1) == Some('"') => {
                    self.i += 1;
                    self.string_literal();
                }
                'b' if self.peek(1) == Some('r') && matches!(self.peek(2), Some('"' | '#')) => {
                    self.raw_string(2);
                }
                'b' if self.peek(1) == Some('\'') => {
                    self.i += 1;
                    self.char_or_lifetime();
                }
                '\'' => self.char_or_lifetime(),
                _ if is_ident_start(ch) || ch.is_ascii_digit() => self.ident(),
                _ => {
                    self.emit(Tok::Punct(ch));
                    self.i += 1;
                }
            }
        }
        mark_tests(&mut self.out.tokens);
        self.out
    }

    fn emit(&mut self, tok: Tok) {
        self.line_has_code = true;
        self.out.tokens.push(Token {
            tok,
            line: self.line,
            in_test: false,
        });
    }

    fn line_comment(&mut self) {
        let start = self.i;
        while self.peek(0).is_some_and(|c| c != '\n') {
            self.i += 1;
        }
        let text: String = self.c[start..self.i].iter().collect();
        self.scan_pragma(&text);
    }

    fn block_comment(&mut self) {
        self.i += 2;
        let mut depth = 1u32;
        while depth > 0 {
            match (self.peek(0), self.peek(1)) {
                (None, _) => return,
                (Some('\n'), _) => {
                    self.line += 1;
                    self.i += 1;
                }
                (Some('/'), Some('*')) => {
                    depth += 1;
                    self.i += 2;
                }
                (Some('*'), Some('/')) => {
                    depth -= 1;
                    self.i += 2;
                }
                _ => self.i += 1,
            }
        }
    }

    /// A `"…"` literal with escapes; `self.i` is on the opening quote.
    fn string_literal(&mut self) {
        let start_line = self.line;
        self.i += 1;
        let mut content = String::new();
        while let Some(ch) = self.peek(0) {
            match ch {
                '"' => {
                    self.i += 1;
                    break;
                }
                '\\' => {
                    // Keep the escape verbatim; rules treat contents as
                    // raw text. `\u{…}` may contain braces — skip them.
                    content.push(ch);
                    self.i += 1;
                    if let Some(esc) = self.peek(0) {
                        content.push(esc);
                        self.i += 1;
                        if esc == 'u' && self.peek(0) == Some('{') {
                            while self.peek(0).is_some_and(|c| c != '}') {
                                content.push(self.c[self.i]);
                                self.i += 1;
                            }
                        }
                    }
                }
                '\n' => {
                    content.push(ch);
                    self.line += 1;
                    self.i += 1;
                }
                _ => {
                    content.push(ch);
                    self.i += 1;
                }
            }
        }
        self.line_has_code = true;
        self.out.tokens.push(Token {
            tok: Tok::Str(content),
            line: start_line,
            in_test: false,
        });
    }

    /// A raw (possibly byte) string; `skip` is the prefix length before
    /// the `#`*/`"` run (`1` for `r`, `2` for `br`).
    fn raw_string(&mut self, skip: usize) {
        let start_line = self.line;
        self.i += skip;
        let mut hashes = 0usize;
        while self.peek(0) == Some('#') {
            hashes += 1;
            self.i += 1;
        }
        if self.peek(0) != Some('"') {
            // `r#ident` (raw identifier), not a raw string: back out and
            // lex the identifier after the hash.
            self.ident();
            return;
        }
        self.i += 1;
        let mut content = String::new();
        'outer: while let Some(ch) = self.peek(0) {
            if ch == '"' {
                let mut matched = 0;
                while matched < hashes {
                    if self.peek(1 + matched) != Some('#') {
                        break;
                    }
                    matched += 1;
                }
                if matched == hashes {
                    self.i += 1 + hashes;
                    break 'outer;
                }
            }
            if ch == '\n' {
                self.line += 1;
            }
            content.push(ch);
            self.i += 1;
        }
        self.line_has_code = true;
        self.out.tokens.push(Token {
            tok: Tok::Str(content),
            line: start_line,
            in_test: false,
        });
    }

    /// Disambiguates `'a'` (char literal) from `'a` (lifetime); `self.i`
    /// is on the quote. Lifetimes emit nothing — no rule needs them.
    fn char_or_lifetime(&mut self) {
        match self.peek(1) {
            Some('\\') => {
                // Escaped char literal: skip to the closing quote.
                self.i += 2;
                if self.peek(0).is_some() {
                    self.i += 1; // the escaped char (or `u` of \u{…})
                }
                if self.peek(0) == Some('{') {
                    while self.peek(0).is_some_and(|c| c != '}') {
                        self.i += 1;
                    }
                    self.i += 1;
                }
                if self.peek(0) == Some('\'') {
                    self.i += 1;
                }
            }
            Some(n) if is_ident_char(n) => {
                let mut j = self.i + 1;
                while self.c.get(j).copied().is_some_and(is_ident_char) {
                    j += 1;
                }
                if self.c.get(j) == Some(&'\'') {
                    self.i = j + 1; // 'a' — char literal
                } else {
                    self.i = j; // 'a — lifetime
                }
            }
            Some(_) => {
                // Punctuation char literal like '('.
                self.i += 2;
                if self.peek(0) == Some('\'') {
                    self.i += 1;
                }
            }
            None => self.i += 1,
        }
    }

    fn ident(&mut self) {
        let start = self.i;
        while self.peek(0).is_some_and(is_ident_char) {
            self.i += 1;
        }
        let word: String = self.c[start..self.i].iter().collect();
        self.emit(Tok::Ident(word));
    }

    /// Parses a pragma out of one line comment, if it carries the
    /// marker. The marker must be the first thing in the comment body
    /// (after the `//`/`///`/`//!` head) — prose that merely *mentions*
    /// `rms-analyze:` mid-sentence, e.g. docs describing the pragma
    /// syntax, is not a pragma.
    fn scan_pragma(&mut self, comment: &str) {
        let body = comment
            .trim_start_matches('/')
            .trim_start_matches('!')
            .trim_start();
        let Some(rest) = body.strip_prefix(PRAGMA_MARKER) else {
            return;
        };
        let own_line = !self.line_has_code;
        let line = self.line;
        let rest = rest.trim();
        let malformed = |why: &str| {
            (
                line,
                format!(
                    "{why} — expected `rms-analyze: allow(<rule>, \"<reason>\")` or \
                     `rms-analyze: atomic-policy(<name>: <Ordering>|…, …)`"
                ),
            )
        };
        if let Some(args) = rest
            .strip_prefix("atomic-policy(")
            .and_then(|r| r.strip_suffix(')'))
        {
            self.scan_atomic_policy(line, args);
            return;
        }
        let Some(args) = rest
            .strip_prefix("allow(")
            .and_then(|r| r.strip_suffix(')'))
        else {
            self.out.pragma_errors.push(malformed("malformed pragma"));
            return;
        };
        let Some((rule, reason)) = args.split_once(',') else {
            self.out
                .pragma_errors
                .push(malformed("pragma has no reason argument"));
            return;
        };
        let reason = reason.trim();
        let Some(reason) = reason
            .strip_prefix('"')
            .and_then(|r| r.strip_suffix('"'))
            .filter(|r| !r.trim().is_empty())
        else {
            self.out
                .pragma_errors
                .push(malformed("pragma reason must be a non-empty quoted string"));
            return;
        };
        self.out.pragmas.push(Pragma {
            line,
            rule: rule.trim().to_string(),
            reason: reason.to_string(),
            own_line,
        });
    }

    /// Parses the argument list of one
    /// `rms-analyze: atomic-policy(name: A|B, …)` declaration. Each
    /// comma-separated entry grants one atomic's accesses a `|`-joined
    /// set of `Ordering::` variants; anything else is a pragma error.
    fn scan_atomic_policy(&mut self, line: u32, args: &str) {
        let malformed = |why: String| {
            (
                line,
                format!("{why} — expected `rms-analyze: atomic-policy(<name>: <Ordering>|…, …)`"),
            )
        };
        for entry in args.split(',') {
            let entry = entry.trim();
            if entry.is_empty() {
                continue;
            }
            let Some((name, orders)) = entry.split_once(':') else {
                self.out.pragma_errors.push(malformed(format!(
                    "atomic-policy entry `{entry}` has no `:`"
                )));
                continue;
            };
            let name = name.trim();
            if name.is_empty() || !name.chars().all(is_ident_char) {
                self.out.pragma_errors.push(malformed(format!(
                    "atomic-policy entry has a malformed atomic name `{name}`"
                )));
                continue;
            }
            let mut orderings = Vec::new();
            let mut bad = false;
            for o in orders.split('|') {
                let o = o.trim();
                if ATOMIC_ORDERINGS.contains(&o) {
                    orderings.push(o.to_string());
                } else {
                    self.out.pragma_errors.push(malformed(format!(
                        "`{o}` is not a memory ordering (known: {})",
                        ATOMIC_ORDERINGS.join(", ")
                    )));
                    bad = true;
                }
            }
            if !bad && !orderings.is_empty() {
                self.out.atomic_policies.push(AtomicPolicy {
                    line,
                    name: name.to_string(),
                    orderings,
                });
            }
        }
    }
}

/// Marks tokens inside `#[cfg(test)]` / `#[test]` items. An attribute is
/// test-gating when its content is exactly `test` or starts with
/// `cfg(test` — deliberately *not* matching `cfg(not(test))`. The gated
/// region is the next balanced `{…}` block (an attribute reaching `;`
/// first — e.g. `#[cfg(test)] mod tests;` — gates nothing in this file).
fn mark_tests(tokens: &mut [Token]) {
    let mut depth = 0u32;
    let mut test_regions: Vec<u32> = Vec::new();
    let mut pending_gate = false;
    let mut i = 0;
    while i < tokens.len() {
        let in_test = !test_regions.is_empty();
        match &tokens[i].tok {
            Tok::Punct('#') => {
                tokens[i].in_test = in_test;
                // `#[…]` (or inner `#![…]`): collect the attribute's
                // tokens to its matching `]`.
                let mut j = i + 1;
                if matches!(tokens.get(j).map(|t| &t.tok), Some(Tok::Punct('!'))) {
                    j += 1;
                }
                if !matches!(tokens.get(j).map(|t| &t.tok), Some(Tok::Punct('['))) {
                    i = j;
                    continue;
                }
                let mut brackets = 0u32;
                let mut content: Vec<Tok> = Vec::new();
                while j < tokens.len() {
                    tokens[j].in_test = in_test;
                    match tokens[j].tok {
                        Tok::Punct('[') => brackets += 1,
                        Tok::Punct(']') => {
                            brackets -= 1;
                            if brackets == 0 {
                                break;
                            }
                        }
                        _ => {}
                    }
                    if brackets == 1 && !matches!(tokens[j].tok, Tok::Punct('[')) {
                        content.push(tokens[j].tok.clone());
                    }
                    j += 1;
                }
                if is_test_gate(&content) {
                    pending_gate = true;
                }
                i = j + 1;
                continue;
            }
            Tok::Punct('{') => {
                depth += 1;
                if pending_gate {
                    test_regions.push(depth);
                    pending_gate = false;
                }
                tokens[i].in_test = !test_regions.is_empty();
            }
            Tok::Punct('}') => {
                tokens[i].in_test = !test_regions.is_empty();
                if test_regions.last() == Some(&depth) {
                    test_regions.pop();
                }
                depth = depth.saturating_sub(1);
            }
            Tok::Punct(';') if pending_gate => {
                // `#[cfg(test)] mod tests;` — the gated code lives in
                // another file; nothing to mark here.
                pending_gate = false;
                tokens[i].in_test = in_test;
            }
            _ => tokens[i].in_test = in_test,
        }
        i += 1;
    }
}

fn is_test_gate(content: &[Tok]) -> bool {
    match content {
        [Tok::Ident(test)] => test == "test",
        [Tok::Ident(cfg), Tok::Punct('('), Tok::Ident(test), rest @ ..] => {
            cfg == "cfg"
                && test == "test"
                && matches!(rest.first(), Some(Tok::Punct(')' | ',')) | None)
        }
        _ => false,
    }
}
