//! Property-based coverage of the analyzer front end: the lexer and
//! the block-tree parser must never panic and always terminate, on
//! arbitrary byte soup and on adversarial brace/keyword salads alike —
//! the analyzer runs over every workspace file on every CI push, so a
//! crash on weird-but-legal input would block unrelated work. The
//! parsed tree must also be structurally sane (spans in range, nested,
//! and statement-partitioned), since the dataflow pass indexes tokens
//! through it unchecked.

use proptest::prelude::*;
use rms_analyze::lexer::lex;
use rms_analyze::parse::parse;

/// Arbitrary byte soup rendered as a (lossy) string — covers non-UTF8
/// leftovers, control characters, embedded NULs, unterminated strings.
fn arb_junk_source() -> impl Strategy<Value = String> {
    prop::collection::vec(any::<u8>(), 0..400)
        .prop_map(|bytes| String::from_utf8_lossy(&bytes).into_owned())
}

/// Adversarial near-Rust fragments: the corner a uniform byte fuzzer
/// almost never reaches — unbalanced braces, orphan `fn`, generics
/// with stray angles, pragmas mid-garbage, raw and lifetime quotes.
fn arb_brace_salad() -> impl Strategy<Value = String> {
    let pieces = [
        "{",
        "}",
        "(",
        ")",
        "[",
        "]",
        "fn ",
        "fn f",
        "fn f(",
        "fn f() ",
        "-> ",
        "=>",
        "<T>",
        "<<",
        ">>",
        ";",
        "let x = ",
        "drop(x)",
        "\"unterminated",
        "\"s\"",
        "'a",
        "'x'",
        "// line\n",
        "/* block",
        "*/",
        "#[cfg(test)]",
        "mod tests ",
        "r#\"raw\"#",
        "// rms-analyze: allow(unwrap-nontest, \"reason\")\n",
        "// rms-analyze: atomic-policy(x: Relaxed)\n",
        "// rms-analyze: atomic-policy(x Relaxed)\n",
        "\n",
        " ",
    ];
    prop::collection::vec(0..pieces.len(), 0..60)
        .prop_map(move |picks| picks.into_iter().map(|i| pieces[i]).collect())
}

/// Lexes and parses one source, asserting the structural invariants
/// the dataflow pass relies on.
fn lex_parse_check(src: &str) -> Result<(), TestCaseError> {
    let out = lex(src);
    let tree = parse(&out.tokens);
    let n = out.tokens.len();
    for (si, scope) in tree.scopes.iter().enumerate() {
        prop_assert!(scope.start <= scope.end, "scope {si} span inverted");
        prop_assert!(scope.end <= n, "scope {si} escapes the token stream");
        for &c in &scope.children {
            prop_assert!(c < tree.scopes.len(), "scope {si} child out of range");
            let child = &tree.scopes[c];
            prop_assert!(
                scope.start <= child.start && child.end <= scope.end,
                "scope {si} child {c} not nested"
            );
        }
        for &(lo, hi) in &scope.stmts {
            prop_assert!(lo <= hi && hi <= scope.end, "scope {si} stmt span bad");
        }
    }
    for f in &tree.functions {
        if let Some(b) = f.body {
            prop_assert!(b < tree.scopes.len(), "fn `{}` body out of range", f.name);
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn junk_never_panics(src in arb_junk_source()) {
        lex_parse_check(&src)?;
    }

    #[test]
    fn brace_salad_never_panics(src in arb_brace_salad()) {
        lex_parse_check(&src)?;
    }

    /// Concatenating two salads (the classic way to cross an
    /// unterminated construct with a fresh one) stays panic-free too.
    #[test]
    fn salad_pairs_never_panic(a in arb_brace_salad(), b in arb_junk_source()) {
        lex_parse_check(&format!("{a}{b}"))?;
    }
}
