// Fixture: the sanctioned publish helpers — `fn store` and `publish*`
// — plus a read-guard deref that is not a publication at all.
// Expected findings: none.

fn store(cell: &std::sync::RwLock<u64>, epoch: u64) {
    *recover_poisoned(cell.write()) = epoch;
}

fn publish_epoch(cell: &std::sync::RwLock<u64>, epoch: u64) {
    *recover_poisoned(cell.write()) = epoch;
}

fn current(cell: &std::sync::RwLock<u64>) -> u64 {
    *recover_poisoned(cell.read())
}
