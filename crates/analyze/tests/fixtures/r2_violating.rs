// Fixture: panics in non-test code. Expected findings: the unwrap, the
// expect, and the panic! — three `unwrap-nontest` violations.

fn parses(s: &str) -> u32 {
    s.parse().unwrap()
}

fn opens(path: &str) -> std::fs::File {
    std::fs::File::open(path).expect("file exists")
}

fn gives_up(flag: bool) {
    if flag {
        panic!("boom");
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_code_may_unwrap() {
        assert_eq!("7".parse::<u32>().unwrap(), 7);
    }
}
