// Fixture (server half of a drifted pair): speaks HELLO/OK/ERR/METRICS.
// The client half speaks HELLO/OK/NACK — expected findings: `ERR` and
// `METRICS` have no client-side occurrence, `NACK` has no server-side
// occurrence.

fn reply(ok: bool) -> String {
    if ok {
        format!("OK {}", 1)
    } else {
        "ERR bad request".to_string()
    }
}

fn greet() -> &'static str {
    "HELLO v1"
}

fn exposition_header() -> &'static str {
    "METRICS"
}
