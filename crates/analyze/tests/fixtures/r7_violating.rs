// Fixture: a two-lock acquisition-order inversion — `alpha` before
// `beta` on one path, `beta` before `alpha` on the other. Expected
// findings: one `lock-order` cycle naming both witness sites.

struct Shared {
    alpha: std::sync::Mutex<u32>,
    beta: std::sync::Mutex<u32>,
}

fn forward(s: &Shared) -> u32 {
    let a = recover_poisoned(s.alpha.lock());
    let b = recover_poisoned(s.beta.lock());
    *a + *b
}

fn backward(s: &Shared) -> u32 {
    let b = recover_poisoned(s.beta.lock());
    let a = recover_poisoned(s.alpha.lock());
    *a + *b
}
