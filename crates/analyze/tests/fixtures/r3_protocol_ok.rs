// Fixture (server half of a consistent pair): both halves speak exactly
// HELLO/OK/ERR. Expected findings: none.

fn reply(ok: bool) -> String {
    if ok {
        format!("OK {}", 1)
    } else {
        "ERR bad request".to_string()
    }
}

fn greet() -> &'static str {
    "HELLO v1"
}

fn exposition_header(lines: usize) -> String {
    let _ = lines;
    "METRICS".to_string()
}
