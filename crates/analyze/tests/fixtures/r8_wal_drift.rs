// Fixture (WAL side): three coverage drifts for `wal-tag-coverage`.
// Expected findings: `TAG_STALE` is declared (and replayed) but never
// encoded, `TAG_DELETE` is encoded but has no replay match arm, and —
// paired with r8_protocol_ok.rs — `Op::Update` has no `TAG_UPDATE`.

const TAG_INSERT: u8 = 1;
const TAG_DELETE: u8 = 2;
const TAG_STALE: u8 = 3;

fn encode_insert(buf: &mut Vec<u8>, key: u64) {
    buf.push(TAG_INSERT);
    buf.extend_from_slice(&key.to_le_bytes());
}

fn encode_delete(buf: &mut Vec<u8>, key: u64) {
    buf.push(TAG_DELETE);
    buf.extend_from_slice(&key.to_le_bytes());
}

fn replay(tag: u8) -> Option<Op> {
    match tag {
        TAG_INSERT => Some(Op::Insert),
        // Replay still knows the legacy tag, but nothing writes it.
        TAG_STALE => None,
        _ => None,
    }
}
