// Fixture: blocking calls in reactor dispatch code — no guard needs to
// be held; parking the thread at all is the violation. Expected
// findings: three reactor-no-block (the bounded send, the recv, the
// sleep). The unbounded send at the bottom is exempt.

fn dispatch_bounded_send(sync_tx: &std::sync::mpsc::SyncSender<u32>) {
    sync_tx.send(7).ok();
}

fn dispatch_recv(rx: &std::sync::mpsc::Receiver<u32>) {
    let _ = rx.recv();
}

fn dispatch_sleep() {
    std::thread::sleep(std::time::Duration::from_millis(1));
}

fn dispatch_unbounded_send(tx: &std::sync::mpsc::Sender<u32>) {
    tx.send(7).ok();
}
