// Fixture (WAL side, clean): every tag has an encode site and a
// replay match arm, and every `Op` variant spoken on the wire has a
// matching tag. Expected findings: none.

const TAG_INSERT: u8 = 1;
const TAG_DELETE: u8 = 2;
const TAG_UPDATE: u8 = 3;

fn encode(buf: &mut Vec<u8>, op: &Op) {
    match op {
        Op::Insert => buf.push(TAG_INSERT),
        Op::Delete => buf.push(TAG_DELETE),
        Op::Update => buf.push(TAG_UPDATE),
    }
}

fn replay(tag: u8) -> Option<&'static str> {
    match tag {
        TAG_INSERT => Some("insert"),
        TAG_DELETE => Some("delete"),
        TAG_UPDATE => Some("update"),
        _ => None,
    }
}
