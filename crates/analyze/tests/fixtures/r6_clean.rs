// Fixture: disciplined metric registrations — literal snake_case names
// with an `rms_<subsystem>_` prefix, each family owned by exactly one
// call site (a loop may register many series from its one site).
// Expected findings: none.

struct Metrics {
    applied: Counter,
    depth: Gauge,
    fsync: Histogram,
    requests: Vec<Counter>,
}

impl Metrics {
    fn register(registry: &Registry) -> Self {
        Metrics {
            applied: registry.register_counter(
                "rms_applier_ops_applied_total",
                "Operations the engine accepted.",
                &[],
            ),
            depth: registry.register_gauge("rms_applier_queue_depth", "Queued ops.", &[]),
            fsync: registry.register_histogram("rms_wal_fsync_seconds", "Fsync latency.", &[]),
            requests: ["query", "stats"]
                .iter()
                .map(|verb| {
                    registry.register_counter(
                        "rms_tcp_requests_total",
                        "Requests handled, by verb.",
                        &[("verb", verb)],
                    )
                })
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_code_may_reregister_junk() {
        let registry = Registry::new();
        let _ = registry.register_counter("not_prefixed", "h", &[]);
        let _ = registry.register_counter("rms_applier_ops_applied_total", "h", &[]);
    }
}
