// Fixture: the same shapes with errors propagated. Expected findings:
// none.

fn parses(s: &str) -> Result<u32, std::num::ParseIntError> {
    s.parse()
}

fn opens(path: &str) -> std::io::Result<std::fs::File> {
    std::fs::File::open(path)
}

fn degrades(flag: bool) -> Result<(), String> {
    if flag {
        return Err("boom".to_string());
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_code_may_unwrap() {
        assert_eq!(super::parses("7").unwrap(), 7);
    }
}
