// Fixture (wire side): the protocol speaks INSERT, DELETE, and UPDATE
// ops. Paired with r8_wal_ok.rs this is fully covered; paired with
// r8_wal_drift.rs the `Op::Update` reference has no WAL tag.

fn parse_verb(verb: &str) -> Option<Op> {
    match verb {
        "INSERT" => Some(Op::Insert),
        "DELETE" => Some(Op::Delete),
        "UPDATE" => Some(Op::Update),
        _ => None,
    }
}
