// Fixture: real violations, each covered by a well-formed pragma —
// one same-line, one own-line. Expected findings: none (two
// suppressions reported on stderr).

fn parses(s: &str) -> u32 {
    s.parse().unwrap() // rms-analyze: allow(unwrap-nontest, "fixture: demonstrates same-line suppression")
}

fn held_across_send(m: &std::sync::Mutex<u32>, tx: &std::sync::mpsc::SyncSender<u32>) {
    let guard = recover_poisoned(m.lock());
    // rms-analyze: allow(guard-across-blocking, "fixture: demonstrates own-line suppression")
    tx.send(*guard).ok();
}
