// Fixture (client half of a drifted pair): speaks HELLO/OK/NACK where
// the server speaks HELLO/OK/ERR.

fn classify(line: &str) -> bool {
    if line.starts_with("NACK ") {
        return false;
    }
    line.starts_with("OK ")
}

fn greet() -> &'static str {
    "HELLO v1"
}
