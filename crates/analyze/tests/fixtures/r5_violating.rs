// Fixture: per-node heap allocations in index-style tree code.
// Expected findings: 3 (the boxed field, the boxed slice alias, the
// Box::new allocation).

enum Node {
    Internal {
        hi: Box<[f64]>,
        left: Box<Node>,
    },
    Leaf {
        points: Vec<f64>,
    },
}

fn grow(n: Node) -> Node {
    Node::Internal {
        hi: vec![0.0].into_boxed_slice(),
        left: Box::new(n),
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_code_may_box() {
        let b: Box<u32> = Box::new(7);
        assert_eq!(*b, 7);
    }
}
