// Fixture (client half of a consistent pair): speaks HELLO/OK/ERR,
// matching the server half exactly.

fn classify(line: &str) -> bool {
    if line.starts_with("ERR ") {
        return false;
    }
    line.starts_with("OK ")
}

fn greet() -> &'static str {
    "HELLO v1"
}

fn scrape_request() -> &'static str {
    "METRICS"
}
