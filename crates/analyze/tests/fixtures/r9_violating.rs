// Fixture: a deref-write through a fresh `.write()` guard outside the
// sanctioned publish helpers — snapshot publication bypassing the
// epoch-monotonicity bookkeeping. Expected findings: one.

fn swap_in(cell: &std::sync::RwLock<u64>, epoch: u64) {
    *recover_poisoned(cell.write()) = epoch;
}
