// Fixture: both paths take the locks in the same global order
// (`alpha` before `beta`), including one where the second hop happens
// through a helper call. Expected findings: none.

struct Shared {
    alpha: std::sync::Mutex<u32>,
    beta: std::sync::Mutex<u32>,
}

fn forward(s: &Shared) -> u32 {
    let a = recover_poisoned(s.alpha.lock());
    let b = recover_poisoned(s.beta.lock());
    *a + *b
}

fn also_forward(s: &Shared) -> u32 {
    let a = recover_poisoned(s.alpha.lock());
    *a + read_beta(s)
}

fn read_beta(s: &Shared) -> u32 {
    *recover_poisoned(s.beta.lock())
}
