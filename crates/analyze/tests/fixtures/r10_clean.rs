// Fixture: every atomic access matches its declared per-file policy,
// and every policy entry is exercised. Expected findings: none.

// rms-analyze: atomic-policy(count: Relaxed, flag: Acquire|Release)

fn bump(count: &std::sync::atomic::AtomicU64) {
    count.fetch_add(1, Ordering::Relaxed);
}

fn raise(flag: &std::sync::atomic::AtomicBool) {
    flag.store(true, Ordering::Release);
}

fn observe(flag: &std::sync::atomic::AtomicBool) -> bool {
    flag.load(Ordering::Acquire)
}
