// Fixture: ad-hoc lock-poison handling. Expected findings: three
// `lock-poison-policy` violations (and `unwrap-nontest` overlaps on the
// first two — the rules are independent).

fn unwraps(m: &std::sync::Mutex<u32>) -> u32 {
    *m.lock().unwrap()
}

fn expects(m: &std::sync::RwLock<u32>) -> u32 {
    *m.read().expect("not poisoned")
}

fn inlines(m: &std::sync::RwLock<u32>) {
    *m.write().unwrap_or_else(std::sync::PoisonError::into_inner) = 7;
}
