// Fixture: flat struct-of-arrays tree layout — nodes in contiguous
// vectors addressed by index, no per-node heap allocations.
// Expected findings: none.

const NO_CHILD: u32 = u32::MAX;

struct Node {
    split_val: f64,
    left: u32,
    right: u32,
}

struct Tree {
    nodes: Vec<Node>,
    bounds: Vec<f64>,
    coords: Vec<f64>,
}

impl Tree {
    fn is_leaf(&self, n: usize) -> bool {
        self.nodes[n].left == NO_CHILD
    }

    fn bound_row(&self, n: usize, dim: usize) -> &[f64] {
        &self.bounds[n * dim..(n + 1) * dim]
    }
}
