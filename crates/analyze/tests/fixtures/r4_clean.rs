// Fixture: every lock result routed through the sanctioned helper.
// Expected findings: none.

use rms_serve::sync::recover_poisoned;

fn reads(m: &std::sync::Mutex<u32>) -> u32 {
    *recover_poisoned(m.lock())
}

// Named `store` so the deref-write is also a sanctioned publish site
// for `epoch-monotonic-publish`.
fn store(m: &std::sync::RwLock<u32>) {
    *recover_poisoned(m.write()) = 7;
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_code_may_unwrap_locks() {
        let m = std::sync::Mutex::new(1u32);
        assert_eq!(*m.lock().unwrap(), 1);
    }
}
