// Fixture: metric-name-discipline violations. Expected findings: 4 —
// the unprefixed name, the camelCase name, the duplicate registration
// of `rms_tcp_requests_total`, and the non-literal name.

fn register_all(registry: &Registry, dynamic_name: &str) {
    // Missing the `rms_<subsystem>_` prefix.
    let _ = registry.register_counter("requests_total", "h", &[]);
    // Not snake_case.
    let _ = registry.register_gauge("rms_tcp_activeSubscribers", "h", &[]);
    // First registration: fine on its own…
    let _ = registry.register_counter("rms_tcp_requests_total", "h", &[("verb", "query")]);
    // …but a second call site for the same family splits ownership.
    let _ = registry.register_counter("rms_tcp_requests_total", "h", &[("verb", "stats")]);
    // Non-literal names defeat the static catalog audit.
    let _ = registry.register_histogram(dynamic_name, "h", &[]);
}
