// Fixture: atomic-ordering-discipline violations. Expected findings:
// the undeclared `flag` store, the `count` access outside its declared
// ordering set, and the stale `ghost` policy entry.

// rms-analyze: atomic-policy(count: Relaxed, ghost: Acquire)

fn bump(count: &std::sync::atomic::AtomicU64) {
    count.fetch_add(1, Ordering::SeqCst);
}

fn raise(flag: &std::sync::atomic::AtomicBool) {
    flag.store(true, Ordering::Release);
}
