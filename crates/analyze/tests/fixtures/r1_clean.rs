// Fixture: the clean counterparts — guard dropped (explicitly or by
// scope) before any blocking call. Expected findings: none.

fn drop_before_send(m: &std::sync::Mutex<u32>, tx: &std::sync::mpsc::Sender<u32>) {
    let guard = recover_poisoned(m.lock());
    let value = *guard;
    drop(guard);
    tx.send(value).ok();
}

fn scope_before_send(m: &std::sync::Mutex<u32>, tx: &std::sync::mpsc::Sender<u32>) {
    let value = {
        let guard = recover_poisoned(m.lock());
        *guard
    };
    tx.send(value).ok();
}

fn nonblocking_under_guard(m: &std::sync::Mutex<u32>, tx: &std::sync::mpsc::SyncSender<u32>) {
    // try_send never blocks; holding the guard across it is the
    // serve layer's sanctioned enqueue+append critical section.
    let guard = recover_poisoned(m.lock());
    tx.try_send(*guard).ok();
}

fn unbounded_send_under_guard(m: &std::sync::Mutex<u32>, tx: &std::sync::mpsc::Sender<u32>) {
    // An unbounded `Sender::send` enqueues without blocking, so the
    // channel classifier lets the guard stay alive across it.
    let guard = recover_poisoned(m.lock());
    tx.send(*guard).ok();
}
