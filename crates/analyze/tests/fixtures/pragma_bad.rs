// Fixture: pragma hygiene. Expected `pragma` findings: a reason-less
// pragma, an unquoted reason, an unknown rule id, and an unused pragma
// covering a clean line. The broken pragmas suppress nothing, so the
// unwraps in a/b/c also surface as `unwrap-nontest`.

fn a(s: &str) -> u32 {
    // rms-analyze: allow(unwrap-nontest)
    s.parse().unwrap()
}

fn b(s: &str) -> u32 {
    // rms-analyze: allow(unwrap-nontest, because reasons)
    s.parse().unwrap()
}

fn c(s: &str) -> u32 {
    // rms-analyze: allow(no-such-rule, "the rule id is wrong")
    s.parse().unwrap()
}

fn d(s: &str) -> Result<u32, std::num::ParseIntError> {
    // rms-analyze: allow(unwrap-nontest, "nothing to suppress here")
    s.parse()
}
