// Fixture: the clean counterparts — nonblocking primitives, an exempt
// unbounded send, and the loop's one sanctioned blocking point behind
// a pragma. Expected findings: none (one suppression on stderr).

fn dispatch_try(sync_tx: &std::sync::mpsc::SyncSender<u32>, rx: &std::sync::mpsc::Receiver<u32>) {
    sync_tx.try_send(7).ok();
    let _ = rx.try_recv();
}

fn dispatch_unbounded(tx: &std::sync::mpsc::Sender<u32>) {
    tx.send(7).ok();
}

fn sanctioned_wait(poller: &mut Poller, events: &mut Vec<Event>) {
    // rms-analyze: allow(reactor-no-block, "fixture: the event loop's single sanctioned blocking point")
    poller.wait(events).ok();
}
