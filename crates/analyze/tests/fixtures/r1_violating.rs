// Fixture: a Mutex guard held across blocking calls — the PR-4/PR-5
// bug class rule `guard-across-blocking` exists to catch. Expected
// findings: the send on the channel and the fsync, both while `guard`
// is alive.

fn held_across_send(m: &std::sync::Mutex<u32>, tx: &std::sync::mpsc::Sender<u32>) {
    let guard = recover_poisoned(m.lock());
    tx.send(*guard).ok();
}

fn held_across_fsync(m: &std::sync::Mutex<std::fs::File>) -> std::io::Result<()> {
    let file = recover_poisoned(m.lock());
    file.sync_data()
}

#[cfg(test)]
mod tests {
    // Test code may hold guards across whatever it likes.
    #[test]
    fn in_tests_this_is_fine() {
        let m = std::sync::Mutex::new(0u32);
        let (tx, _rx) = std::sync::mpsc::channel();
        let guard = m.lock().unwrap();
        tx.send(*guard).ok();
    }
}
