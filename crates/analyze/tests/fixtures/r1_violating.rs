// Fixture: a Mutex guard held across blocking calls — the PR-4/PR-5
// bug class rule `guard-across-blocking` exists to catch. Expected
// findings: the sync-channel send, the fsync, and the call into the
// local helper the may-block fixpoint marks blocking.

fn held_across_send(m: &std::sync::Mutex<u32>, tx: &std::sync::mpsc::SyncSender<u32>) {
    let guard = recover_poisoned(m.lock());
    tx.send(*guard).ok();
}

fn held_across_fsync(m: &std::sync::Mutex<std::fs::File>) -> std::io::Result<()> {
    let file = recover_poisoned(m.lock());
    file.sync_data()
}

fn held_across_helper(m: &std::sync::Mutex<std::fs::File>) {
    let file = recover_poisoned(m.lock());
    persist(&file);
}

// The fixpoint marks this may-block: it fsyncs.
fn persist(file: &std::fs::File) {
    file.sync_data().ok();
}

#[cfg(test)]
mod tests {
    // Test code may hold guards across whatever it likes.
    #[test]
    fn in_tests_this_is_fine() {
        let m = std::sync::Mutex::new(0u32);
        let (tx, _rx) = std::sync::mpsc::sync_channel(1);
        let guard = m.lock().unwrap();
        tx.send(*guard).ok();
    }
}
