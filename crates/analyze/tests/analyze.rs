//! End-to-end tests for the `rms-analyze` binary: each rule's fixture
//! pair (violating ⇒ exit 1 with the right findings, clean ⇒ exit 0),
//! pragma suppression and hygiene, and the pin that the checked-in
//! workspace itself is finding-free.

use std::path::PathBuf;
use std::process::{Command, Output};

fn fixture(name: &str) -> String {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
        .display()
        .to_string()
}

fn run(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_rms-analyze"))
        .args(args)
        .output()
        .expect("spawn rms-analyze")
}

fn stdout(out: &Output) -> String {
    String::from_utf8_lossy(&out.stdout).into_owned()
}

fn count_rule(out: &Output, rule: &str) -> usize {
    stdout(out)
        .lines()
        .filter(|l| l.split_whitespace().nth(1) == Some(rule))
        .count()
}

#[test]
fn workspace_is_finding_free() {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root");
    let out = run(&["--workspace", &root.display().to_string()]);
    assert!(
        out.status.success(),
        "checked-in workspace has findings:\n{}",
        stdout(&out)
    );
    assert!(stdout(&out).is_empty(), "stdout: {}", stdout(&out));
}

#[test]
fn r1_guard_across_blocking() {
    let out = run(&[&fixture("r1_violating.rs")]);
    assert!(!out.status.success());
    assert_eq!(
        count_rule(&out, "guard-across-blocking"),
        2,
        "expected the send and the fsync:\n{}",
        stdout(&out)
    );

    let out = run(&[&fixture("r1_clean.rs")]);
    assert!(
        out.status.success(),
        "clean fixture flagged:\n{}",
        stdout(&out)
    );
}

#[test]
fn r2_unwrap_nontest() {
    let out = run(&[&fixture("r2_violating.rs")]);
    assert!(!out.status.success());
    assert_eq!(
        count_rule(&out, "unwrap-nontest"),
        3,
        "expected unwrap + expect + panic!:\n{}",
        stdout(&out)
    );

    let out = run(&[&fixture("r2_clean.rs")]);
    assert!(
        out.status.success(),
        "clean fixture flagged:\n{}",
        stdout(&out)
    );
}

#[test]
fn r3_wire_grammar() {
    let out = run(&[
        &fixture("r3_protocol_drift.rs"),
        &fixture("r3_client_drift.rs"),
    ]);
    assert!(!out.status.success());
    let text = stdout(&out);
    assert_eq!(
        count_rule(&out, "wire-grammar"),
        3,
        "expected ERR, METRICS, and NACK drift:\n{text}"
    );
    assert!(text.contains("`ERR`"), "missing ERR drift:\n{text}");
    assert!(text.contains("`NACK`"), "missing NACK drift:\n{text}");
    assert!(text.contains("`METRICS`"), "missing METRICS drift:\n{text}");

    let out = run(&[&fixture("r3_protocol_ok.rs"), &fixture("r3_client_ok.rs")]);
    assert!(
        out.status.success(),
        "consistent pair flagged:\n{}",
        stdout(&out)
    );
}

#[test]
fn r4_lock_poison_policy() {
    let out = run(&["--rules", "lock-poison-policy", &fixture("r4_violating.rs")]);
    assert!(!out.status.success());
    assert_eq!(
        count_rule(&out, "lock-poison-policy"),
        3,
        "expected unwrap + expect + inline unwrap_or_else:\n{}",
        stdout(&out)
    );

    let out = run(&[&fixture("r4_clean.rs")]);
    assert!(
        out.status.success(),
        "clean fixture flagged:\n{}",
        stdout(&out)
    );
}

#[test]
fn r5_index_no_box_node() {
    let out = run(&[&fixture("r5_violating.rs")]);
    assert!(!out.status.success());
    assert_eq!(
        count_rule(&out, "index-no-box-node"),
        3,
        "expected the boxed field, boxed child, and Box::new:\n{}",
        stdout(&out)
    );

    let out = run(&[&fixture("r5_clean.rs")]);
    assert!(
        out.status.success(),
        "clean fixture flagged:\n{}",
        stdout(&out)
    );
}

#[test]
fn r6_metric_name_discipline() {
    let out = run(&[&fixture("r6_violating.rs")]);
    assert!(!out.status.success());
    let text = stdout(&out);
    assert_eq!(
        count_rule(&out, "metric-name-discipline"),
        4,
        "expected unprefixed + camelCase + duplicate + non-literal:\n{text}"
    );
    assert!(text.contains("`requests_total` violates"), "{text}");
    assert!(
        text.contains("`rms_tcp_activeSubscribers` violates"),
        "{text}"
    );
    assert!(text.contains("registered more than once"), "{text}");
    assert!(text.contains("non-literal metric name"), "{text}");

    let out = run(&[&fixture("r6_clean.rs")]);
    assert!(
        out.status.success(),
        "clean fixture flagged:\n{}",
        stdout(&out)
    );
}

/// The real wire implementations both speak the `METRICS` verb: the
/// workspace pin above proves the two vocabularies *match*, this proves
/// the verb this PR added is actually *in* them (matching-by-omission
/// would pass the pin).
#[test]
fn wire_vocabulary_includes_metrics_verb() {
    use rms_analyze::lexer::lex;
    use rms_analyze::rules::wire_vocabulary;
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..");
    for rel in ["crates/serve/src/protocol.rs", "crates/client/src/lib.rs"] {
        let path = root.join(rel);
        let src = std::fs::read_to_string(&path).expect("read wire file");
        let files = vec![(path.clone(), lex(&src).tokens)];
        let vocab = wire_vocabulary(&files);
        assert!(
            vocab.contains_key("METRICS"),
            "{rel} does not speak METRICS; vocabulary: {:?}",
            vocab.keys().collect::<Vec<_>>()
        );
    }
}

#[test]
fn pragmas_suppress_with_reason() {
    let out = run(&[&fixture("pragma_suppressed.rs")]);
    assert!(
        out.status.success(),
        "pragma-covered violations still fatal:\n{}",
        stdout(&out)
    );
    let err = String::from_utf8_lossy(&out.stderr).into_owned();
    assert!(
        err.contains("2 suppressed by 2 pragma(s)"),
        "suppressions not reported: {err}"
    );
    assert!(
        err.contains("demonstrates same-line suppression")
            && err.contains("demonstrates own-line suppression"),
        "pragma reasons not echoed: {err}"
    );
}

#[test]
fn pragma_hygiene_is_enforced() {
    let out = run(&[&fixture("pragma_bad.rs")]);
    assert!(!out.status.success());
    let text = stdout(&out);
    assert_eq!(
        count_rule(&out, "pragma"),
        4,
        "expected reason-less, unquoted, unknown-rule, unused:\n{text}"
    );
    assert!(text.contains("no reason argument"), "{text}");
    assert!(text.contains("non-empty quoted string"), "{text}");
    assert!(text.contains("unknown rule `no-such-rule`"), "{text}");
    assert!(text.contains("unused pragma"), "{text}");
    // The broken pragmas must not have suppressed the real findings.
    assert_eq!(count_rule(&out, "unwrap-nontest"), 3, "{text}");
}

#[test]
fn unknown_rule_flag_is_rejected() {
    let out = run(&["--rules", "no-such-rule", &fixture("r2_clean.rs")]);
    assert_eq!(out.status.code(), Some(2), "usage errors exit 2");
}
