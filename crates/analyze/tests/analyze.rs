//! End-to-end tests for the `rms-analyze` binary: each rule's fixture
//! pair (violating ⇒ exit 1 with the right findings, clean ⇒ exit 0),
//! pragma suppression and hygiene, and the pin that the checked-in
//! workspace itself is finding-free.

use std::path::PathBuf;
use std::process::{Command, Output};

fn fixture(name: &str) -> String {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
        .display()
        .to_string()
}

fn run(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_rms-analyze"))
        .args(args)
        .output()
        .expect("spawn rms-analyze")
}

fn stdout(out: &Output) -> String {
    String::from_utf8_lossy(&out.stdout).into_owned()
}

fn count_rule(out: &Output, rule: &str) -> usize {
    stdout(out)
        .lines()
        .filter(|l| l.split_whitespace().nth(1) == Some(rule))
        .count()
}

#[test]
fn workspace_is_finding_free() {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root");
    let out = run(&["--workspace", &root.display().to_string()]);
    assert!(
        out.status.success(),
        "checked-in workspace has findings:\n{}",
        stdout(&out)
    );
    assert!(stdout(&out).is_empty(), "stdout: {}", stdout(&out));
}

/// The four PR-9 rules plus PR-10's reactor rule, pinned individually
/// against the checked-in workspace: a regression in any one of them
/// surfaces under its own name instead of hiding inside the all-rules
/// pin above.
#[test]
fn new_rules_are_workspace_clean() {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root");
    for rule in [
        "lock-order",
        "wal-tag-coverage",
        "epoch-monotonic-publish",
        "atomic-ordering-discipline",
        "reactor-no-block",
    ] {
        let out = run(&["--rules", rule, "--workspace", &root.display().to_string()]);
        assert!(
            out.status.success(),
            "workspace has `{rule}` findings:\n{}",
            stdout(&out)
        );
    }
}

#[test]
fn r1_guard_across_blocking() {
    let out = run(&[&fixture("r1_violating.rs")]);
    assert!(!out.status.success());
    let text = stdout(&out);
    assert_eq!(
        count_rule(&out, "guard-across-blocking"),
        3,
        "expected the sync send, the fsync, and the may-block helper call:\n{text}"
    );
    assert!(
        text.contains("`persist(…)`, which may block"),
        "may-block fixpoint did not reach the helper call:\n{text}"
    );

    let out = run(&[&fixture("r1_clean.rs")]);
    assert!(
        out.status.success(),
        "clean fixture flagged (unbounded send misclassified?):\n{}",
        stdout(&out)
    );
}

#[test]
fn r2_unwrap_nontest() {
    let out = run(&[&fixture("r2_violating.rs")]);
    assert!(!out.status.success());
    assert_eq!(
        count_rule(&out, "unwrap-nontest"),
        3,
        "expected unwrap + expect + panic!:\n{}",
        stdout(&out)
    );

    let out = run(&[&fixture("r2_clean.rs")]);
    assert!(
        out.status.success(),
        "clean fixture flagged:\n{}",
        stdout(&out)
    );
}

#[test]
fn r3_wire_grammar() {
    let out = run(&[
        &fixture("r3_protocol_drift.rs"),
        &fixture("r3_client_drift.rs"),
    ]);
    assert!(!out.status.success());
    let text = stdout(&out);
    assert_eq!(
        count_rule(&out, "wire-grammar"),
        3,
        "expected ERR, METRICS, and NACK drift:\n{text}"
    );
    assert!(text.contains("`ERR`"), "missing ERR drift:\n{text}");
    assert!(text.contains("`NACK`"), "missing NACK drift:\n{text}");
    assert!(text.contains("`METRICS`"), "missing METRICS drift:\n{text}");

    let out = run(&[&fixture("r3_protocol_ok.rs"), &fixture("r3_client_ok.rs")]);
    assert!(
        out.status.success(),
        "consistent pair flagged:\n{}",
        stdout(&out)
    );
}

#[test]
fn r4_lock_poison_policy() {
    let out = run(&["--rules", "lock-poison-policy", &fixture("r4_violating.rs")]);
    assert!(!out.status.success());
    assert_eq!(
        count_rule(&out, "lock-poison-policy"),
        3,
        "expected unwrap + expect + inline unwrap_or_else:\n{}",
        stdout(&out)
    );

    let out = run(&[&fixture("r4_clean.rs")]);
    assert!(
        out.status.success(),
        "clean fixture flagged:\n{}",
        stdout(&out)
    );
}

#[test]
fn r5_index_no_box_node() {
    let out = run(&[&fixture("r5_violating.rs")]);
    assert!(!out.status.success());
    assert_eq!(
        count_rule(&out, "index-no-box-node"),
        3,
        "expected the boxed field, boxed child, and Box::new:\n{}",
        stdout(&out)
    );

    let out = run(&[&fixture("r5_clean.rs")]);
    assert!(
        out.status.success(),
        "clean fixture flagged:\n{}",
        stdout(&out)
    );
}

#[test]
fn r6_metric_name_discipline() {
    let out = run(&[&fixture("r6_violating.rs")]);
    assert!(!out.status.success());
    let text = stdout(&out);
    assert_eq!(
        count_rule(&out, "metric-name-discipline"),
        4,
        "expected unprefixed + camelCase + duplicate + non-literal:\n{text}"
    );
    assert!(text.contains("`requests_total` violates"), "{text}");
    assert!(
        text.contains("`rms_tcp_activeSubscribers` violates"),
        "{text}"
    );
    assert!(text.contains("registered more than once"), "{text}");
    assert!(text.contains("non-literal metric name"), "{text}");

    let out = run(&[&fixture("r6_clean.rs")]);
    assert!(
        out.status.success(),
        "clean fixture flagged:\n{}",
        stdout(&out)
    );
}

#[test]
fn r7_lock_order() {
    let out = run(&[&fixture("r7_violating.rs")]);
    assert!(!out.status.success());
    let text = stdout(&out);
    assert_eq!(
        count_rule(&out, "lock-order"),
        1,
        "expected one cycle finding for the alpha/beta inversion:\n{text}"
    );
    assert!(text.contains("potential deadlock"), "{text}");
    assert!(
        text.contains("`alpha`") && text.contains("`beta`"),
        "cycle chain does not name both locks:\n{text}"
    );

    let out = run(&[&fixture("r7_clean.rs")]);
    assert!(
        out.status.success(),
        "consistently-ordered fixture flagged:\n{}",
        stdout(&out)
    );
}

#[test]
fn r8_wal_tag_coverage() {
    let out = run(&[&fixture("r8_wal_drift.rs"), &fixture("r8_protocol_ok.rs")]);
    assert!(!out.status.success());
    let text = stdout(&out);
    assert_eq!(
        count_rule(&out, "wal-tag-coverage"),
        3,
        "expected never-encoded, no-replay-arm, and tagless-op:\n{text}"
    );
    assert!(
        text.contains("`TAG_STALE` is declared but never encoded"),
        "{text}"
    );
    assert!(
        text.contains("`TAG_DELETE` has no replay match arm"),
        "{text}"
    );
    assert!(
        text.contains("`Op::Update` has no WAL record tag `TAG_UPDATE`"),
        "{text}"
    );

    let out = run(&[&fixture("r8_wal_ok.rs"), &fixture("r8_protocol_ok.rs")]);
    assert!(
        out.status.success(),
        "fully-covered pair flagged:\n{}",
        stdout(&out)
    );
}

#[test]
fn r9_epoch_monotonic_publish() {
    let out = run(&[&fixture("r9_violating.rs")]);
    assert!(!out.status.success());
    let text = stdout(&out);
    assert_eq!(
        count_rule(&out, "epoch-monotonic-publish"),
        1,
        "expected the unsanctioned deref-write:\n{text}"
    );
    assert!(text.contains("sanctioned publish helper"), "{text}");

    let out = run(&[&fixture("r9_clean.rs")]);
    assert!(
        out.status.success(),
        "sanctioned helpers flagged:\n{}",
        stdout(&out)
    );
}

#[test]
fn r10_atomic_ordering_discipline() {
    let out = run(&[&fixture("r10_violating.rs")]);
    assert!(!out.status.success());
    let text = stdout(&out);
    assert_eq!(
        count_rule(&out, "atomic-ordering-discipline"),
        3,
        "expected undeclared, out-of-policy, and stale-entry:\n{text}"
    );
    assert!(
        text.contains("atomic `flag` uses `Ordering::Release` but has no"),
        "{text}"
    );
    assert!(
        text.contains("atomic `count` uses `Ordering::SeqCst` but its declared"),
        "{text}"
    );
    assert!(
        text.contains("atomic-policy entry `ghost` matches no atomic use"),
        "{text}"
    );

    let out = run(&[&fixture("r10_clean.rs")]);
    assert!(
        out.status.success(),
        "policy-conforming fixture flagged:\n{}",
        stdout(&out)
    );
}

#[test]
fn r11_reactor_no_block() {
    let out = run(&[&fixture("r11_reactor_violating.rs")]);
    assert!(!out.status.success());
    let text = stdout(&out);
    assert_eq!(
        count_rule(&out, "reactor-no-block"),
        3,
        "expected the bounded send, the recv, and the sleep (the \
         unbounded send is exempt):\n{text}"
    );
    assert!(
        text.contains("`recv(…)` can park a reactor thread"),
        "{text}"
    );

    let out = run(&[&fixture("r11_reactor_clean.rs")]);
    assert!(
        out.status.success(),
        "clean fixture flagged (unbounded send misclassified, or the \
         pragma on the sanctioned wait misread?):\n{}",
        stdout(&out)
    );
}

/// The real wire implementations both speak the `METRICS` verb: the
/// workspace pin above proves the two vocabularies *match*, this proves
/// the verb this PR added is actually *in* them (matching-by-omission
/// would pass the pin).
#[test]
fn wire_vocabulary_includes_metrics_verb() {
    use rms_analyze::lexer::lex;
    use rms_analyze::rules::wire_vocabulary;
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..");
    for rel in ["crates/serve/src/protocol.rs", "crates/client/src/lib.rs"] {
        let path = root.join(rel);
        let src = std::fs::read_to_string(&path).expect("read wire file");
        let files = vec![(path.clone(), lex(&src).tokens)];
        let vocab = wire_vocabulary(&files);
        assert!(
            vocab.contains_key("METRICS"),
            "{rel} does not speak METRICS; vocabulary: {:?}",
            vocab.keys().collect::<Vec<_>>()
        );
    }
}

#[test]
fn pragmas_suppress_with_reason() {
    let out = run(&[&fixture("pragma_suppressed.rs")]);
    assert!(
        out.status.success(),
        "pragma-covered violations still fatal:\n{}",
        stdout(&out)
    );
    let err = String::from_utf8_lossy(&out.stderr).into_owned();
    assert!(
        err.contains("2 suppressed by 2 pragma(s)"),
        "suppressions not reported: {err}"
    );
    assert!(
        err.contains("demonstrates same-line suppression")
            && err.contains("demonstrates own-line suppression"),
        "pragma reasons not echoed: {err}"
    );
}

#[test]
fn pragma_hygiene_is_enforced() {
    let out = run(&[&fixture("pragma_bad.rs")]);
    assert!(!out.status.success());
    let text = stdout(&out);
    assert_eq!(
        count_rule(&out, "pragma"),
        4,
        "expected reason-less, unquoted, unknown-rule, unused:\n{text}"
    );
    assert!(text.contains("no reason argument"), "{text}");
    assert!(text.contains("non-empty quoted string"), "{text}");
    assert!(text.contains("unknown rule `no-such-rule`"), "{text}");
    assert!(text.contains("unused pragma"), "{text}");
    // The broken pragmas must not have suppressed the real findings.
    assert_eq!(count_rule(&out, "unwrap-nontest"), 3, "{text}");
}

#[test]
fn unknown_rule_flag_is_rejected() {
    let out = run(&["--rules", "no-such-rule", &fixture("r2_clean.rs")]);
    assert_eq!(out.status.code(), Some(2), "usage errors exit 2");
}

#[test]
fn json_output_carries_fingerprints() {
    let out = run(&["--format", "json", &fixture("r2_violating.rs")]);
    assert!(!out.status.success(), "violations still exit 1 under json");
    let json = stdout(&out);
    assert!(json.contains("\"findings\":["), "{json}");
    assert!(json.contains("\"rule\":\"unwrap-nontest\""), "{json}");
    assert!(json.contains("\"files_scanned\":1"), "{json}");
    assert_eq!(
        json.matches("\"fingerprint\":\"").count(),
        3,
        "one fingerprint per finding:\n{json}"
    );
}

/// A baseline built from fixture A's JSON output silences exactly A's
/// findings — fixture B's finding, scanned in the same run, survives.
#[test]
fn baseline_round_trips_through_json() {
    let out = run(&["--format", "json", &fixture("r2_violating.rs")]);
    let json = stdout(&out);
    let pat = "\"fingerprint\":\"";
    let prints: Vec<&str> = json
        .match_indices(pat)
        .map(|(i, _)| &json[i + pat.len()..i + pat.len() + 16])
        .collect();
    assert_eq!(prints.len(), 3, "{json}");
    let path = std::env::temp_dir().join(format!("rms-analyze-baseline-{}", std::process::id()));
    std::fs::write(&path, prints.join("\n")).expect("write baseline");

    let out = run(&[
        "--baseline",
        &path.display().to_string(),
        &fixture("r2_violating.rs"),
        &fixture("r9_violating.rs"),
    ]);
    std::fs::remove_file(&path).ok();
    assert!(
        !out.status.success(),
        "non-baselined finding must stay fatal"
    );
    assert_eq!(
        count_rule(&out, "unwrap-nontest"),
        0,
        "baselined findings leaked into stdout:\n{}",
        stdout(&out)
    );
    assert_eq!(
        count_rule(&out, "epoch-monotonic-publish"),
        1,
        "the baseline silenced more than fixture A:\n{}",
        stdout(&out)
    );
    let err = String::from_utf8_lossy(&out.stderr).into_owned();
    assert_eq!(
        err.matches("rms-analyze: baselined").count(),
        3,
        "baselined findings not reported on stderr: {err}"
    );
}

#[test]
fn list_rules_matches_readme_table() {
    let out = run(&["--list-rules"]);
    assert!(out.status.success());
    let listing = stdout(&out);
    let rules: Vec<(&str, &str)> = listing
        .lines()
        .map(|l| l.split_once('\t').expect("rule\\tdescription"))
        .collect();
    assert_eq!(rules.len(), 11, "rule catalog size changed:\n{listing}");

    let readme = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../README.md");
    let readme = std::fs::read_to_string(readme).expect("read README.md");
    for (rule, desc) in rules {
        let row = format!("| `{rule}` | {desc} |");
        assert!(
            readme.contains(&row),
            "README rule table is out of date — missing row:\n{row}\n\
             (regenerate from `rms-analyze --list-rules`)"
        );
    }
}
