//! Labeled process metrics for the FD-RMS serving stack.
//!
//! A [`Registry`] owns a set of metric *families* (one per name), each
//! holding one *series* per distinct label set. Three instrument kinds
//! are supported, mirroring the Prometheus data model:
//!
//! - [`Counter`] — monotonically increasing `u64`;
//! - [`Gauge`] — signed value that can go up and down;
//! - [`Histogram`] — fixed log₂-bucket latency histogram (64 buckets,
//!   one per power-of-two nanosecond range), the same layout the serve
//!   bench's read tally has used since PR 3.
//!
//! Instrument handles are cheap `Arc` clones over plain atomics: the
//! hot path (`inc`/`add`/`record`) is a relaxed `fetch_add` with no
//! locking. The registry's internal mutex is touched only at
//! registration time and when encoding, both off the hot path.
//!
//! # Naming discipline
//!
//! Metric names must be `snake_case` and carry an `rms_<subsystem>_`
//! prefix (`rms_wal_appends_total`, `rms_tcp_subscribers`, …). The
//! rules are enforced at registration (see [`validate_metric_name`])
//! and statically by the `rms-analyze` rule `metric-name-discipline`.
//!
//! # Exposition
//!
//! [`Registry::encode`] renders the Prometheus text format
//! (`# HELP`/`# TYPE` headers, escaped label values, cumulative
//! `_bucket`/`_sum`/`_count` histogram series with `le` upper edges in
//! seconds). Output is deterministic: families and series are stored
//! in ordered maps, so two encodes of the same state are byte-equal.
//!
//! # Disabled mode
//!
//! [`Registry::disabled`] (or [`Registry::from_env`] with
//! `KRMS_METRICS_DISABLED=1`) returns a registry whose handles are
//! no-ops — registration still validates and the catalog still
//! encodes, but every `inc`/`record` is a single predictable branch.
//! The bench report uses this to price the instrumentation.
//!
//! ```
//! use rms_metrics::Registry;
//!
//! let reg = Registry::new();
//! let reqs = reg.register_counter(
//!     "rms_tcp_requests_total",
//!     "Requests handled, by verb.",
//!     &[("verb", "QUERY")],
//! );
//! reqs.inc();
//! let text = reg.encode();
//! assert!(text.contains("# TYPE rms_tcp_requests_total counter"));
//! assert!(text.contains("rms_tcp_requests_total{verb=\"QUERY\"} 1"));
//! ```

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::time::Duration;

// Every atomic in this crate is an independent statistics cell —
// counters, gauges, histogram buckets, and sums carry no cross-cell
// ordering contract (a scrape racing a `record` may be off by the
// in-flight observation, which Prometheus tolerates by design) — so
// every access, through whichever handle name it flows, is Relaxed.
// rms-analyze: atomic-policy(c: Relaxed, g: Relaxed, cell: Relaxed, bucket: Relaxed, buckets: Relaxed, b: Relaxed, sum_raw: Relaxed)

/// Number of log₂ latency buckets per histogram: bucket `i` counts
/// observations in `[2^i, 2^(i+1))` nanoseconds, so 64 buckets span
/// the full `u64` nanosecond range (~584 years).
pub const HISTOGRAM_BUCKETS: usize = 64;

/// The environment variable [`Registry::from_env`] consults: set to a
/// non-empty value other than `0` to construct a disabled registry.
pub const DISABLE_ENV: &str = "KRMS_METRICS_DISABLED";

/// Sole poison policy of this crate, mirroring `rms-serve`: the
/// registry map holds no invariants a panicking registrant could
/// break mid-update that outlive the entry insert, so recover the
/// guard instead of propagating the poison.
fn recover<T>(result: Result<T, PoisonError<T>>) -> T {
    result.unwrap_or_else(PoisonError::into_inner)
}

/// Checks the metric-name discipline shared with the `rms-analyze`
/// `metric-name-discipline` rule: ASCII `snake_case` over `[a-z0-9_]`,
/// at least three non-empty `_`-separated segments, and an
/// `rms_<subsystem>_` prefix.
///
/// # Errors
///
/// Returns a human-readable description of the first violated rule.
pub fn validate_metric_name(name: &str) -> Result<(), String> {
    if name.is_empty() {
        return Err("metric name is empty".into());
    }
    if !name
        .bytes()
        .all(|b| b.is_ascii_lowercase() || b.is_ascii_digit() || b == b'_')
    {
        return Err(format!(
            "metric name `{name}` must be snake_case over [a-z0-9_]"
        ));
    }
    let segments: Vec<&str> = name.split('_').collect();
    if segments.iter().any(|s| s.is_empty()) {
        return Err(format!(
            "metric name `{name}` has an empty `_`-separated segment"
        ));
    }
    if segments[0] != "rms" || segments.len() < 3 {
        return Err(format!(
            "metric name `{name}` must carry an `rms_<subsystem>_` prefix"
        ));
    }
    Ok(())
}

/// Checks a label name: `[a-z][a-z0-9_]*`, and not the reserved `le`
/// (which the histogram encoder appends itself).
fn validate_label_name(name: &str) -> Result<(), String> {
    let starts_lower = name.as_bytes().first().is_some_and(u8::is_ascii_lowercase);
    let body_ok = name
        .bytes()
        .all(|b| b.is_ascii_lowercase() || b.is_ascii_digit() || b == b'_');
    if !starts_lower || !body_ok {
        return Err(format!("label name `{name}` must match [a-z][a-z0-9_]*"));
    }
    if name == "le" {
        return Err("label name `le` is reserved for histogram buckets".into());
    }
    Ok(())
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Kind {
    Counter,
    Gauge,
    Histogram,
}

impl Kind {
    fn as_str(self) -> &'static str {
        match self {
            Kind::Counter => "counter",
            Kind::Gauge => "gauge",
            Kind::Histogram => "histogram",
        }
    }
}

#[derive(Clone, Debug)]
enum SeriesCell {
    Counter(Arc<AtomicU64>),
    Gauge(Arc<AtomicI64>),
    Histogram(Arc<HistogramCore>),
}

#[derive(Debug)]
struct Family {
    kind: Kind,
    help: String,
    /// One series per distinct label set; the key is the label pairs
    /// sorted by name, which makes encoding order deterministic.
    series: BTreeMap<Vec<(String, String)>, SeriesCell>,
}

/// A process-local collection of labeled metric families.
///
/// The serving stack creates one registry per backend (shared across
/// all shards of a group), so a `krms serve` process has exactly one —
/// effectively process-wide in production, while tests can keep
/// several isolated instances in one process.
#[derive(Debug)]
pub struct Registry {
    on: bool,
    families: Mutex<BTreeMap<String, Family>>,
}

impl Default for Registry {
    fn default() -> Self {
        Self::new()
    }
}

impl Registry {
    /// Creates an enabled registry.
    #[must_use]
    pub fn new() -> Self {
        Registry {
            on: true,
            families: Mutex::new(BTreeMap::new()),
        }
    }

    /// Creates a registry whose instruments are no-ops: registration
    /// still validates names and the catalog still encodes (with zero
    /// values), but the hot-path record calls return immediately.
    #[must_use]
    pub fn disabled() -> Self {
        Registry {
            on: false,
            families: Mutex::new(BTreeMap::new()),
        }
    }

    /// Creates [`Registry::disabled`] when [`DISABLE_ENV`] is set to a
    /// non-empty value other than `0`, else [`Registry::new`]. The
    /// bench-overhead comparison flips this switch.
    #[must_use]
    pub fn from_env() -> Self {
        let off = matches!(std::env::var(DISABLE_ENV), Ok(v) if !v.is_empty() && v != "0");
        if off {
            Self::disabled()
        } else {
            Self::new()
        }
    }

    /// Whether instruments from this registry record anything.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.on
    }

    /// Registers (or looks up) the counter series `name{labels}`.
    ///
    /// Registration is get-or-create: a second call with the same name
    /// and labels returns a handle to the same underlying cell, and
    /// the same name with different labels adds a series to the
    /// family. The `help` text of the first registration wins.
    ///
    /// # Panics
    ///
    /// Panics if the name violates [`validate_metric_name`], a label
    /// name is malformed or duplicated, or `name` is already
    /// registered as a different kind. All of these are programmer
    /// errors caught at startup, not runtime conditions.
    pub fn register_counter(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Counter {
        let cell = self.register_cell(Kind::Counter, name, help, labels, || {
            SeriesCell::Counter(Arc::new(AtomicU64::new(0)))
        });
        match cell {
            SeriesCell::Counter(cell) => Counter { cell, on: self.on },
            // rms-analyze: allow(unwrap-nontest, "register_cell asserts the family kind matches, so the cell variant is Counter")
            _ => unreachable!("kind checked by register_cell"),
        }
    }

    /// Registers (or looks up) the gauge series `name{labels}`.
    ///
    /// # Panics
    ///
    /// Same conditions as [`Registry::register_counter`].
    pub fn register_gauge(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Gauge {
        let cell = self.register_cell(Kind::Gauge, name, help, labels, || {
            SeriesCell::Gauge(Arc::new(AtomicI64::new(0)))
        });
        match cell {
            SeriesCell::Gauge(cell) => Gauge { cell, on: self.on },
            // rms-analyze: allow(unwrap-nontest, "register_cell asserts the family kind matches, so the cell variant is Gauge")
            _ => unreachable!("kind checked by register_cell"),
        }
    }

    /// Registers (or looks up) the latency histogram series
    /// `name{labels}`: observations are nanoseconds, `le` bucket edges
    /// and `_sum` are rendered in seconds.
    ///
    /// # Panics
    ///
    /// Same conditions as [`Registry::register_counter`].
    pub fn register_histogram(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Histogram {
        let cell = self.register_cell(Kind::Histogram, name, help, labels, || {
            SeriesCell::Histogram(Arc::new(HistogramCore::new(NANOS_PER_SECOND)))
        });
        match cell {
            SeriesCell::Histogram(core) => Histogram { core, on: self.on },
            // rms-analyze: allow(unwrap-nontest, "register_cell asserts the family kind matches, so the cell variant is Histogram")
            _ => unreachable!("kind checked by register_cell"),
        }
    }

    /// Registers (or looks up) a *unitless* histogram series
    /// `name{labels}` — for size distributions (ops per batch) rather
    /// than latencies. Observations, `le` edges, and `_sum` are all in
    /// the raw observed unit. A name must not mix units: register it
    /// either through this or through [`Registry::register_histogram`],
    /// never both (the first registration's unit wins).
    ///
    /// # Panics
    ///
    /// Same conditions as [`Registry::register_counter`].
    pub fn register_histogram_values(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
    ) -> Histogram {
        let cell = self.register_cell(Kind::Histogram, name, help, labels, || {
            SeriesCell::Histogram(Arc::new(HistogramCore::new(1.0)))
        });
        match cell {
            SeriesCell::Histogram(core) => Histogram { core, on: self.on },
            // rms-analyze: allow(unwrap-nontest, "register_cell asserts the family kind matches, so the cell variant is Histogram")
            _ => unreachable!("kind checked by register_cell"),
        }
    }

    fn register_cell(
        &self,
        kind: Kind,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        make: impl FnOnce() -> SeriesCell,
    ) -> SeriesCell {
        if let Err(e) = validate_metric_name(name) {
            // rms-analyze: allow(unwrap-nontest, "registration-time name validation is a programmer error; fail fast at startup")
            panic!("rms-metrics: {e}");
        }
        let mut key: Vec<(String, String)> = labels
            .iter()
            .map(|(k, v)| ((*k).to_string(), (*v).to_string()))
            .collect();
        for (k, _) in &key {
            if let Err(e) = validate_label_name(k) {
                // rms-analyze: allow(unwrap-nontest, "registration-time label validation is a programmer error; fail fast at startup")
                panic!("rms-metrics: metric `{name}`: {e}");
            }
        }
        key.sort();
        if key.windows(2).any(|w| w[0].0 == w[1].0) {
            // rms-analyze: allow(unwrap-nontest, "registration-time label validation is a programmer error; fail fast at startup")
            panic!("rms-metrics: metric `{name}` has a duplicate label name");
        }
        let mut families = recover(self.families.lock());
        let family = families.entry(name.to_string()).or_insert_with(|| Family {
            kind,
            help: help.to_string(),
            series: BTreeMap::new(),
        });
        assert!(
            family.kind == kind,
            "rms-metrics: metric `{name}` already registered as {}",
            family.kind.as_str()
        );
        family.series.entry(key).or_insert_with(make).clone()
    }

    /// Renders every family in the Prometheus text exposition format.
    ///
    /// Families are emitted in name order and series in label order,
    /// so the output is deterministic for a given set of values.
    /// Values are read with relaxed loads: a histogram scraped during
    /// a concurrent `record` may be internally off by the in-flight
    /// observation, which Prometheus tolerates by design.
    #[must_use]
    pub fn encode(&self) -> String {
        let families = recover(self.families.lock());
        let mut out = String::new();
        for (name, family) in families.iter() {
            let _ = write!(out, "# HELP {name} ");
            escape_help_into(&mut out, &family.help);
            out.push('\n');
            let _ = writeln!(out, "# TYPE {name} {}", family.kind.as_str());
            for (labels, cell) in &family.series {
                match cell {
                    SeriesCell::Counter(c) => {
                        out.push_str(name);
                        push_labels(&mut out, labels, None);
                        let _ = writeln!(out, " {}", c.load(Ordering::Relaxed));
                    }
                    SeriesCell::Gauge(g) => {
                        out.push_str(name);
                        push_labels(&mut out, labels, None);
                        let _ = writeln!(out, " {}", g.load(Ordering::Relaxed));
                    }
                    SeriesCell::Histogram(h) => encode_histogram(&mut out, name, labels, h),
                }
            }
        }
        out
    }
}

/// Appends `{k1="v1",k2="v2"}` (plus an optional trailing extra pair,
/// used for `le`) or nothing when there are no labels at all.
fn push_labels(out: &mut String, labels: &[(String, String)], extra: Option<(&str, &str)>) {
    if labels.is_empty() && extra.is_none() {
        return;
    }
    out.push('{');
    let mut first = true;
    for (k, v) in labels {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str(k);
        out.push_str("=\"");
        escape_label_into(out, v);
        out.push('"');
    }
    if let Some((k, v)) = extra {
        if !first {
            out.push(',');
        }
        out.push_str(k);
        out.push_str("=\"");
        // `le` values are numerals we format ourselves; escaping is
        // still applied for uniformity.
        escape_label_into(out, v);
        out.push('"');
    }
    out.push('}');
}

/// Escapes a label value per the text format: backslash, double
/// quote, and line feed.
fn escape_label_into(out: &mut String, value: &str) {
    for ch in value.chars() {
        match ch {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            other => out.push(other),
        }
    }
}

/// Escapes HELP text per the text format: backslash and line feed
/// (double quotes are legal in HELP).
fn escape_help_into(out: &mut String, help: &str) {
    for ch in help.chars() {
        match ch {
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            other => out.push(other),
        }
    }
}

/// Nanoseconds per second: the display scale of latency histograms.
const NANOS_PER_SECOND: f64 = 1e9;

/// Upper edge of log₂ bucket `i` in display units: `2^(i+1)` raw units
/// divided by the histogram's scale. Exact for every `i` (powers of
/// two divide cleanly in binary floating point), so the rendered `le`
/// values are stable.
fn bucket_upper(i: usize, scale: f64) -> f64 {
    #[allow(clippy::cast_possible_truncation, clippy::cast_possible_wrap)]
    let exp = (i + 1) as i32;
    2f64.powi(exp) / scale
}

fn encode_histogram(out: &mut String, name: &str, labels: &[(String, String)], h: &HistogramCore) {
    let mut counts = [0u64; HISTOGRAM_BUCKETS];
    for (slot, bucket) in counts.iter_mut().zip(&h.buckets) {
        *slot = bucket.load(Ordering::Relaxed);
    }
    // Use the sum of the loaded buckets as the authoritative total so
    // `+Inf` and `_count` agree with the bucket lines even if a racing
    // `record` lands between our loads.
    let total: u64 = counts.iter().sum();
    let highest = counts.iter().rposition(|&c| c != 0);
    let mut cumulative = 0u64;
    if let Some(highest) = highest {
        for (i, &c) in counts.iter().enumerate().take(highest + 1) {
            cumulative += c;
            out.push_str(name);
            out.push_str("_bucket");
            let le = bucket_upper(i, h.scale).to_string();
            push_labels(out, labels, Some(("le", &le)));
            let _ = writeln!(out, " {cumulative}");
        }
    }
    out.push_str(name);
    out.push_str("_bucket");
    push_labels(out, labels, Some(("le", "+Inf")));
    let _ = writeln!(out, " {total}");
    out.push_str(name);
    out.push_str("_sum");
    push_labels(out, labels, None);
    #[allow(clippy::cast_precision_loss)]
    let sum_display = h.sum_raw.load(Ordering::Relaxed) as f64 / h.scale;
    let _ = writeln!(out, " {sum_display}");
    out.push_str(name);
    out.push_str("_count");
    push_labels(out, labels, None);
    let _ = writeln!(out, " {total}");
}

/// A monotonically increasing counter. Handles are cheap clones
/// sharing one atomic cell; `inc`/`add` are relaxed `fetch_add`s.
#[derive(Clone, Debug)]
pub struct Counter {
    cell: Arc<AtomicU64>,
    on: bool,
}

impl Counter {
    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        if self.on {
            self.cell.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Current value.
    #[must_use]
    pub fn value(&self) -> u64 {
        self.cell.load(Ordering::Relaxed)
    }
}

/// A signed gauge that can move in both directions (queue depths,
/// live subscriber counts).
#[derive(Clone, Debug)]
pub struct Gauge {
    cell: Arc<AtomicI64>,
    on: bool,
}

impl Gauge {
    /// Sets the gauge to `v`.
    pub fn set(&self, v: i64) {
        if self.on {
            self.cell.store(v, Ordering::Relaxed);
        }
    }

    /// Adds `n` (may be negative).
    pub fn add(&self, n: i64) {
        if self.on {
            self.cell.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Subtracts one.
    pub fn dec(&self) {
        self.add(-1);
    }

    /// Current value.
    #[must_use]
    pub fn value(&self) -> i64 {
        self.cell.load(Ordering::Relaxed)
    }
}

#[derive(Debug)]
struct HistogramCore {
    /// Bucket `i` counts observations in `[2^i, 2^(i+1))` raw units.
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    sum_raw: AtomicU64,
    /// Raw units per display unit: [`NANOS_PER_SECOND`] for latency
    /// histograms, `1.0` for unitless value histograms.
    scale: f64,
}

impl HistogramCore {
    fn new(scale: f64) -> Self {
        HistogramCore {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            sum_raw: AtomicU64::new(0),
            scale,
        }
    }
}

/// A fixed log₂-bucket histogram: 64 power-of-two buckets, recorded
/// with two relaxed `fetch_add`s and a shift. Latency histograms
/// ([`Registry::register_histogram`]) observe nanoseconds and render
/// seconds; value histograms ([`Registry::register_histogram_values`])
/// observe and render raw units.
#[derive(Clone, Debug)]
pub struct Histogram {
    core: Arc<HistogramCore>,
    on: bool,
}

impl Histogram {
    /// Records an elapsed duration (latency histograms).
    pub fn record(&self, elapsed: Duration) {
        let ns = u64::try_from(elapsed.as_nanos()).unwrap_or(u64::MAX);
        self.record_value(ns);
    }

    /// Records a raw nanosecond observation (latency histograms).
    pub fn record_ns(&self, ns: u64) {
        self.record_value(ns);
    }

    /// Records one raw observation. Zero is clamped to 1 so every
    /// observation lands in a bucket.
    pub fn record_value(&self, v: u64) {
        if !self.on {
            return;
        }
        let v = v.max(1);
        let idx = 63 - v.leading_zeros() as usize;
        self.core.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.core.sum_raw.fetch_add(v, Ordering::Relaxed);
    }

    /// Total number of observations.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.core
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .sum()
    }

    /// Sum of all observations in raw units (nanoseconds for latency
    /// histograms).
    #[must_use]
    pub fn sum_ns(&self) -> u64 {
        self.core.sum_raw.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn name_discipline() {
        assert!(validate_metric_name("rms_wal_appends_total").is_ok());
        assert!(validate_metric_name("rms_tcp_subscribers").is_ok());
        assert!(validate_metric_name("rms_applier_apply_seconds").is_ok());
        // Junk: wrong prefix, case, separators, empty segments.
        assert!(validate_metric_name("").is_err());
        assert!(validate_metric_name("wal_appends_total").is_err());
        assert!(validate_metric_name("rms_appends").is_err());
        assert!(validate_metric_name("rms__appends_total").is_err());
        assert!(validate_metric_name("rms_Wal_appends").is_err());
        assert!(validate_metric_name("rms-wal-appends").is_err());
        assert!(validate_metric_name("rms_wal_appends_").is_err());
    }

    #[test]
    #[should_panic(expected = "rms_<subsystem>_")]
    fn junk_name_rejected_at_registration() {
        let reg = Registry::new();
        let _ = reg.register_counter("bogus", "nope", &[]);
    }

    #[test]
    #[should_panic(expected = "already registered as counter")]
    fn kind_conflict_rejected() {
        let reg = Registry::new();
        let _ = reg.register_counter("rms_x_y_total", "a", &[]);
        let _ = reg.register_gauge("rms_x_y_total", "b", &[]);
    }

    #[test]
    #[should_panic(expected = "reserved")]
    fn le_label_rejected() {
        let reg = Registry::new();
        let _ = reg.register_histogram("rms_x_y_seconds", "a", &[("le", "1")]);
    }

    #[test]
    fn get_or_create_shares_the_cell() {
        let reg = Registry::new();
        let a = reg.register_counter("rms_x_y_total", "a", &[("shard", "0")]);
        let b = reg.register_counter("rms_x_y_total", "a", &[("shard", "0")]);
        a.inc();
        b.add(2);
        assert_eq!(a.value(), 3);
        assert_eq!(b.value(), 3);
    }

    #[test]
    fn disabled_registry_records_nothing() {
        let reg = Registry::disabled();
        assert!(!reg.is_enabled());
        let c = reg.register_counter("rms_x_y_total", "a", &[]);
        let g = reg.register_gauge("rms_x_depth", "b", &[]);
        let h = reg.register_histogram("rms_x_y_seconds", "c", &[]);
        c.inc();
        g.set(7);
        h.record_ns(1000);
        assert_eq!(c.value(), 0);
        assert_eq!(g.value(), 0);
        assert_eq!(h.count(), 0);
        // The catalog still encodes, with zero values.
        let text = reg.encode();
        assert!(text.contains("rms_x_y_total 0"));
        assert!(text.contains("rms_x_y_seconds_count 0"));
    }

    #[test]
    fn value_histogram_renders_raw_units() {
        let reg = Registry::new();
        let h = reg.register_histogram_values("rms_x_batch_ops", "ops per batch", &[]);
        h.record_value(3); // bucket 1: [2, 4)
        h.record_value(100); // bucket 6: [64, 128)
        let text = reg.encode();
        assert!(text.contains("le=\"4\"} 1"), "{text}");
        assert!(text.contains("le=\"128\"} 2"), "{text}");
        assert!(text.contains("rms_x_batch_ops_sum 103"), "{text}");
        assert!(text.contains("rms_x_batch_ops_count 2"), "{text}");
    }

    #[test]
    fn histogram_buckets_are_log2() {
        let reg = Registry::new();
        let h = reg.register_histogram("rms_x_y_seconds", "c", &[]);
        h.record_ns(0); // clamps to 1 → bucket 0
        h.record_ns(1);
        h.record_ns(2);
        h.record_ns(3);
        h.record_ns(1024);
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum_ns(), 1 + 1 + 2 + 3 + 1024);
        let text = reg.encode();
        // Bucket 0 upper edge is 2 ns; cumulative count there is 2.
        assert!(text.contains("le=\"0.000000002\"} 2"), "{text}");
        assert!(text.contains("le=\"+Inf\"} 5"), "{text}");
    }
}
