//! Prometheus text-encoder coverage: golden outputs (exact bytes for
//! a mixed registry, label escaping), and property tests that the
//! encoding is deterministic under registration order, that label
//! values round-trip through escaping, and that the name validator
//! agrees with an independently written reference predicate.

use proptest::prelude::*;
use rms_metrics::{validate_metric_name, Registry};

#[test]
fn golden_mixed_registry() {
    let reg = Registry::new();
    let q = reg.register_counter(
        "rms_tcp_requests_total",
        "Requests handled, by verb.",
        &[("verb", "QUERY")],
    );
    let b = reg.register_counter(
        "rms_tcp_requests_total",
        "Requests handled, by verb.",
        &[("verb", "BATCH")],
    );
    let depth = reg.register_gauge(
        "rms_applier_queue_depth",
        "Ops waiting in the applier queue.",
        &[("shard", "0")],
    );
    let fsync = reg.register_histogram("rms_wal_fsync_seconds", "WAL fsync latency.", &[]);
    q.add(3);
    b.inc();
    depth.set(5);
    fsync.record_ns(1); // bucket 0: [1, 2) ns
    fsync.record_ns(900); // bucket 9: [512, 1024) ns
    fsync.record_ns(1000); // bucket 9
    let expected = "\
# HELP rms_applier_queue_depth Ops waiting in the applier queue.
# TYPE rms_applier_queue_depth gauge
rms_applier_queue_depth{shard=\"0\"} 5
# HELP rms_tcp_requests_total Requests handled, by verb.
# TYPE rms_tcp_requests_total counter
rms_tcp_requests_total{verb=\"BATCH\"} 1
rms_tcp_requests_total{verb=\"QUERY\"} 3
# HELP rms_wal_fsync_seconds WAL fsync latency.
# TYPE rms_wal_fsync_seconds histogram
rms_wal_fsync_seconds_bucket{le=\"0.000000002\"} 1
rms_wal_fsync_seconds_bucket{le=\"0.000000004\"} 1
rms_wal_fsync_seconds_bucket{le=\"0.000000008\"} 1
rms_wal_fsync_seconds_bucket{le=\"0.000000016\"} 1
rms_wal_fsync_seconds_bucket{le=\"0.000000032\"} 1
rms_wal_fsync_seconds_bucket{le=\"0.000000064\"} 1
rms_wal_fsync_seconds_bucket{le=\"0.000000128\"} 1
rms_wal_fsync_seconds_bucket{le=\"0.000000256\"} 1
rms_wal_fsync_seconds_bucket{le=\"0.000000512\"} 1
rms_wal_fsync_seconds_bucket{le=\"0.000001024\"} 3
rms_wal_fsync_seconds_bucket{le=\"+Inf\"} 3
rms_wal_fsync_seconds_sum 0.000001901
rms_wal_fsync_seconds_count 3
";
    assert_eq!(reg.encode(), expected);
}

#[test]
fn golden_label_escaping() {
    let reg = Registry::new();
    let _ = reg.register_counter("rms_x_y_total", "h", &[("path", "a\\b\"c\nd")]);
    let expected = "\
# HELP rms_x_y_total h
# TYPE rms_x_y_total counter
rms_x_y_total{path=\"a\\\\b\\\"c\\nd\"} 0
";
    assert_eq!(reg.encode(), expected);
}

#[test]
fn golden_help_escaping_and_empty_labels() {
    let reg = Registry::new();
    let g = reg.register_gauge("rms_x_y_bytes", "path is C:\\tmp\nsecond line", &[]);
    g.set(-4);
    let expected = "\
# HELP rms_x_y_bytes path is C:\\\\tmp\\nsecond line
# TYPE rms_x_y_bytes gauge
rms_x_y_bytes -4
";
    assert_eq!(reg.encode(), expected);
}

/// Independent restatement of the naming discipline, for the
/// validator property below.
fn name_ok(name: &str) -> bool {
    !name.is_empty()
        && name
            .bytes()
            .all(|b| b.is_ascii_lowercase() || b.is_ascii_digit() || b == b'_')
        && name.split('_').all(|s| !s.is_empty())
        && name.split('_').next() == Some("rms")
        && name.split('_').count() >= 3
}

/// Metric-name soup assembled from segments that cover every rule:
/// good segments, empty ones (double underscores), case and dash
/// violations, with and without the `rms` prefix.
fn arb_name() -> impl Strategy<Value = String> {
    const SEGS: [&str; 10] = [
        "", "rms", "wal", "x", "1", "Total", "a-b", "ops", "seconds", "é",
    ];
    prop::collection::vec(0..SEGS.len(), 0..5)
        .prop_map(|idx| idx.iter().map(|&i| SEGS[i]).collect::<Vec<_>>().join("_"))
}

/// Label-value soup biased toward the characters escaping must handle.
fn arb_label_value() -> impl Strategy<Value = String> {
    const CHARS: [char; 10] = ['a', 'Z', '0', '_', '\\', '"', '\n', ' ', 'é', '{'];
    prop::collection::vec(0..CHARS.len(), 0..24)
        .prop_map(|idx| idx.iter().map(|&i| CHARS[i]).collect())
}

/// Reverses the text-format label escaping.
fn unescape(escaped: &str) -> String {
    let mut out = String::new();
    let mut chars = escaped.chars();
    while let Some(c) = chars.next() {
        if c == '\\' {
            match chars.next() {
                Some('\\') => out.push('\\'),
                Some('n') => out.push('\n'),
                Some('"') => out.push('"'),
                other => panic!("invalid escape sequence ending in {other:?}"),
            }
        } else {
            out.push(c);
        }
    }
    out
}

/// Pulls the escaped value of `label` out of a sample line, honoring
/// escape state when looking for the closing quote.
fn extract_label(line: &str, label: &str) -> String {
    let open = format!("{label}=\"");
    let start = line.find(&open).expect("label present") + open.len();
    let mut end = None;
    let mut escaped = false;
    for (i, c) in line[start..].char_indices() {
        if escaped {
            escaped = false;
        } else if c == '\\' {
            escaped = true;
        } else if c == '"' {
            end = Some(start + i);
            break;
        }
    }
    line[start..end.expect("closing quote")].to_string()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The validator accepts exactly the names the reference predicate
    /// accepts — junk is rejected, discipline-conforming names pass.
    #[test]
    fn validator_matches_reference(name in arb_name()) {
        prop_assert_eq!(
            validate_metric_name(&name).is_ok(),
            name_ok(&name),
            "name: {:?}", name
        );
    }

    /// Arbitrary label values survive encode → unescape, and never
    /// break line framing (the sample stays on one line).
    #[test]
    fn label_values_round_trip(value in arb_label_value()) {
        let reg = Registry::new();
        let _ = reg.register_counter("rms_x_y_total", "h", &[("path", &value)]);
        let text = reg.encode();
        let lines: Vec<&str> = text.lines().collect();
        prop_assert_eq!(lines.len(), 3, "framing broken: {:?}", text);
        let sample = lines[2];
        prop_assert!(sample.starts_with("rms_x_y_total{path=\""), "{}", sample);
        prop_assert_eq!(unescape(&extract_label(sample, "path")), value);
    }

    /// Encoding is deterministic: the same series registered in any
    /// order (and any interleaving of increments) encode identically.
    #[test]
    fn encoding_is_order_independent(series in prop::collection::vec((0..3usize, 0..3usize, 1..5u64), 1..12)) {
        const NAMES: [&str; 3] = ["rms_a_b_total", "rms_c_d_total", "rms_e_f_total"];
        const VALS: [&str; 3] = ["x", "y", "z"];
        let forward = Registry::new();
        for &(n, l, amount) in &series {
            forward
                .register_counter(NAMES[n], "h", &[("tag", VALS[l])])
                .add(amount);
        }
        let reverse = Registry::new();
        for &(n, l, amount) in series.iter().rev() {
            reverse
                .register_counter(NAMES[n], "h", &[("tag", VALS[l])])
                .add(amount);
        }
        prop_assert_eq!(forward.encode(), reverse.encode());
    }
}
