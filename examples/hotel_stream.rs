//! The paper's motivating scenario: a hotel-booking site keeps a short
//! list of representative hotels under continuous price/availability
//! churn (Section I).
//!
//! Each hotel has 5 attributes (price value, rating, location, amenities,
//! review count — all scaled so larger is better). Every "tick" a batch
//! of hotels reprice, which in the dynamic model is a deletion followed by
//! an insertion. We compare FD-RMS's maintained shortlist against a
//! from-scratch greedy recomputation, in both result quality and time.
//!
//! ```sh
//! cargo run --release --example hotel_stream
//! ```

use krms::baselines::{DynamicAdapter, Greedy};
use krms::prelude::*;
use rand::{rngs::StdRng, Rng, SeedableRng};

const N_HOTELS: usize = 5_000;
const D: usize = 5;
const SHORTLIST: usize = 8;
const TICKS: usize = 20;
const REPRICES_PER_TICK: usize = 25;

fn main() {
    let mut rng = StdRng::seed_from_u64(2021);
    // Hotels: correlated attributes (good hotels are good across the
    // board), like the BB stand-in.
    let hotels = krms::data::generators::correlated(&mut rng, N_HOTELS, D);

    let mut fd = FdRms::builder(D)
        .k(1)
        .r(SHORTLIST)
        .epsilon(0.01)
        .max_utilities(1 << 11)
        .seed(3)
        .build(hotels.clone())
        .expect("valid configuration");
    let mut greedy =
        DynamicAdapter::new(Greedy, 1, SHORTLIST, hotels.clone()).expect("valid initial database");

    let est = RegretEstimator::new(D, 20_000, 55);
    let mut live = hotels;
    let mut next_id = N_HOTELS as u64;
    let mut fd_timer = krms::eval::UpdateTimer::new();
    let mut greedy_timer = krms::eval::UpdateTimer::new();

    println!("tick  fd_mrr  greedy_mrr  fd_avg_ms  greedy_avg_ms  greedy_recomputes");
    for tick in 1..=TICKS {
        for _ in 0..REPRICES_PER_TICK {
            // A random hotel reprices: delete + insert with new attributes.
            let victim = rng.gen_range(0..live.len());
            let old = live.swap_remove(victim);
            let mut coords: Vec<f64> = old.coords().to_vec();
            // Price value moves by up to ±20%, clamped to [0, 1].
            coords[0] = (coords[0] * rng.gen_range(0.8..1.2)).clamp(0.0, 1.0);
            let new = Point::new(next_id, coords).expect("nonnegative attrs");
            next_id += 1;
            live.push(new.clone());

            fd_timer.record(|| {
                fd.delete(old.id()).expect("live hotel");
                fd.insert(new.clone()).expect("fresh id");
            });
            greedy_timer.record(|| {
                greedy.delete(old.id()).expect("live hotel");
                greedy.insert(new.clone()).expect("fresh id");
            });
        }
        let fd_mrr = est.mrr(&live, &fd.result(), 1);
        let greedy_mrr = est.mrr(&live, greedy.result(), 1);
        println!(
            "{tick:>4}  {fd_mrr:.4}  {greedy_mrr:>10.4}  {:>9.3}  {:>13.3}  {:>17}",
            fd_timer.avg_ms(),
            greedy_timer.avg_ms(),
            greedy.recomputes()
        );
    }
    println!(
        "\nFD-RMS kept a {SHORTLIST}-hotel shortlist within {:.1}x of greedy's quality \
         while updating {:.0}x faster on average.",
        est.mrr(&live, &fd.result(), 1) / est.mrr(&live, greedy.result(), 1).max(1e-9),
        greedy_timer.avg_ms() / fd_timer.avg_ms().max(1e-9)
    );
}
