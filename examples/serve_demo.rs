//! End-to-end tour of the serving stack over the wire: an `RmsServer`
//! on loopback, driven entirely by the typed `rms-client` crate — a
//! writer pipelines mutations with protocol-v2 `BATCH` frames while the
//! main thread holds a `SUBSCRIBE` connection and applies the pushed
//! `DELTA` stream, reconstructing the server's solution without ever
//! polling `QUERY` (run `krms serve` for the same server over a real
//! port, or see PR 3's history for the original in-process variant).
//!
//! ```sh
//! cargo run --release --example serve_demo
//! ```

use krms::prelude::*;
use krms::serve::{RmsServer, ServeConfig};
use rand::{rngs::StdRng, Rng, SeedableRng};
use rms_client::{ClientOp, RmsClient};
use std::collections::VecDeque;
use std::time::Instant;

const N: usize = 2_000;
const D: usize = 4;
const R: usize = 8;
const BATCH: usize = 64;
/// Whole batches only — the quiesce loop waits for exactly this count.
const OPS: usize = 94 * BATCH;

fn main() {
    let mut rng = StdRng::seed_from_u64(11);
    let initial = krms::data::generators::independent(&mut rng, N, D);

    let service = RmsService::start(
        FdRms::builder(D)
            .r(R)
            .epsilon(0.03)
            .max_utilities(1 << 10)
            .seed(3),
        initial,
        ServeConfig {
            queue_capacity: 512,
            max_batch: 256,
            mrr_directions: 2_000, // publish regret estimates…
            mrr_every: 8,          // …every 8 epochs
            ..ServeConfig::default()
        },
    )
    .expect("valid configuration");
    let server = RmsServer::bind("127.0.0.1:0", service).expect("bind loopback");
    let addr = server.local_addr().expect("local addr");
    let server = std::thread::spawn(move || server.run().expect("server run"));

    // Writer: steady churn (insert a fresh tuple / retire the oldest),
    // pipelined BATCH frames — one ack per 64 ops instead of 64 acks.
    let writer = std::thread::spawn(move || {
        let mut client = RmsClient::connect(addr).expect("writer connect");
        let hello = client.hello();
        println!(
            "negotiated v{} (dim={}, r={}, shards={})",
            hello.version, hello.dim, hello.r, hello.shards
        );
        let mut rng = StdRng::seed_from_u64(23);
        let mut live: VecDeque<PointId> = (0..N as PointId).collect();
        let mut next: PointId = 1_000_000;
        for chunk in 0..(OPS / BATCH) {
            let ops: Vec<ClientOp> = (0..BATCH)
                .map(|i| {
                    if (chunk * BATCH + i) % 2 == 0 {
                        let coords = (0..D).map(|_| rng.gen()).collect();
                        live.push_back(next);
                        next += 1;
                        ClientOp::insert(next - 1, coords)
                    } else {
                        ClientOp::delete(live.pop_front().expect("window never drains"))
                    }
                })
                .collect();
            let acked = client.submit_batch(&ops).expect("batch ack");
            assert_eq!(acked, BATCH);
        }
        // Quiesce, then stop the server gracefully.
        loop {
            let stats = client.stats().expect("stats");
            if stats.ops_applied() == Some(OPS as u64) {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(5));
        }
        client.shutdown().expect("shutdown ack");
    });

    // Subscriber: the push stream replaces polling. Every DELTA line is
    // applied to the mirrored solution; the server closes the stream
    // after its final publish.
    let mut sub = RmsClient::connect(addr)
        .expect("subscriber connect")
        .subscribe(1)
        .expect("subscribe");
    println!(
        "subscribed: epoch(s) {:?}, |Q| = {}",
        sub.epochs(),
        sub.ids().len()
    );
    println!("elapsed_ms  version  +added  -removed  n_live  |Q|");
    let start = Instant::now();
    let mut deltas = 0u64;
    while let Some(delta) = sub.next_delta().expect("delta stream") {
        deltas += 1;
        println!(
            "{:>10.1}  {:>7}  {:>6}  {:>8}  {:>6}  {:>3}",
            start.elapsed().as_secs_f64() * 1e3,
            delta.version,
            delta.added.len(),
            delta.removed.len(),
            delta.n,
            sub.ids().len(),
        );
    }
    writer.join().expect("writer thread");

    // The reconstructed solution must equal the engine's final result.
    let fds = server.join().expect("server thread");
    let fd = &fds[0];
    let final_ids: Vec<u64> = fd.result().iter().map(Point::id).collect();
    assert_eq!(sub.ids(), final_ids, "delta replay diverged");
    let est = RegretEstimator::new(D, 20_000, 99);
    println!(
        "\n{deltas} deltas reconstructed the final solution exactly: n={}, |Q|={}, mrr_1={:.4}",
        fd.len(),
        fd.result().len(),
        est.mrr(&fd.live_points(), &fd.result(), 1)
    );
}
