//! In-process tour of the serving subsystem: a writer thread streams
//! updates through an `RmsService` while the main thread reads published
//! snapshots — no TCP involved, just the queue → applier → snapshot
//! pipeline (run `krms serve` for the network front end over the same
//! machinery).
//!
//! ```sh
//! cargo run --release --example serve_demo
//! ```

use krms::prelude::*;
use krms::serve::ServeConfig;
use rand::{rngs::StdRng, Rng, SeedableRng};
use std::collections::VecDeque;
use std::time::{Duration, Instant};

const N: usize = 2_000;
const D: usize = 4;
const R: usize = 8;
const OPS: usize = 6_000;

fn main() {
    let mut rng = StdRng::seed_from_u64(11);
    let initial = krms::data::generators::independent(&mut rng, N, D);

    let service = RmsService::start(
        FdRms::builder(D)
            .r(R)
            .epsilon(0.03)
            .max_utilities(1 << 10)
            .seed(3),
        initial.clone(),
        ServeConfig {
            queue_capacity: 512,
            max_batch: 256,
            mrr_directions: 2_000, // publish regret estimates…
            mrr_every: 8,          // …every 8 epochs
            ..ServeConfig::default()
        },
    )
    .expect("valid configuration");

    // Writer: steady churn (insert a fresh tuple / retire the oldest),
    // blocking on queue backpressure when it outruns the applier.
    let writer = {
        let handle = service.handle();
        std::thread::spawn(move || {
            let mut rng = StdRng::seed_from_u64(23);
            let mut live: VecDeque<PointId> = (0..N as PointId).collect();
            let mut next: PointId = 1_000_000;
            for i in 0..OPS {
                let op = if i % 2 == 0 {
                    let p = Point::new_unchecked(next, (0..D).map(|_| rng.gen()).collect());
                    live.push_back(next);
                    next += 1;
                    Op::Insert(p)
                } else {
                    Op::Delete(live.pop_front().expect("window never drains"))
                };
                handle.submit(op).expect("service alive");
            }
        })
    };

    // Reader: poll the snapshot cell while ingestion runs. Reads are an
    // `Arc` clone — they never wait on the applier.
    println!("elapsed_ms  epoch  queue  n_live  |Q|   mrr     applied");
    let handle = service.handle();
    let start = Instant::now();
    let mut last_epoch = u64::MAX;
    while !writer.is_finished() {
        let snap = handle.snapshot();
        if snap.epoch != last_epoch {
            last_epoch = snap.epoch;
            println!(
                "{:>10.1}  {:>5}  {:>5}  {:>6}  {:>3}   {}  {:>7}",
                start.elapsed().as_secs_f64() * 1e3,
                snap.epoch,
                handle.queue_depth(),
                snap.len,
                snap.result.len(),
                snap.mrr.map_or("  –  ".into(), |m| format!("{m:.3}")),
                snap.stats.ops_applied,
            );
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    writer.join().expect("writer thread");

    // Graceful shutdown drains everything still queued and returns the
    // engine for a final audit.
    let fd = service.shutdown();
    let snap = handle.snapshot();
    println!(
        "\ndrained: epoch={}, {} ops applied ({} rejected), max batch {}, avg apply {:.2} ms",
        snap.epoch,
        snap.stats.ops_applied,
        snap.stats.ops_rejected,
        snap.stats.max_coalesced,
        snap.stats.avg_apply_ms(),
    );
    let est = RegretEstimator::new(D, 20_000, 99);
    println!(
        "final: n={}, |Q|={}, mrr_1={:.4}",
        fd.len(),
        fd.result().len(),
        est.mrr(&fd.live_points(), &fd.result(), 1)
    );
}
