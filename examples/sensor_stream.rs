//! IoT scenario from the paper's introduction: sensors connect and
//! disconnect, and the server keeps a small representative set of sensor
//! readings for any monitoring preference — a sliding-window stream.
//!
//! The window holds the last `WINDOW` readings; arrivals are drained in
//! small bursts (as a real collector would), and every burst beyond the
//! window evicts the oldest readings — one `apply_batch` call per burst
//! on the batch update engine, the fully dynamic worst case.
//! We report sustained update throughput and the quality of the
//! maintained representative set at checkpoints.
//!
//! ```sh
//! cargo run --release --example sensor_stream
//! ```

use krms::prelude::*;
use rand::{rngs::StdRng, SeedableRng};
use std::collections::VecDeque;

const D: usize = 6; // e.g. temperature, humidity, PM2.5, CO2, noise, battery
const WINDOW: usize = 4_000;
const STREAM_LEN: usize = 12_000;
const R: usize = 12;
/// Readings drained from the collector per engine call (each burst is one
/// `apply_batch` of `BURST` inserts + `BURST` evictions).
const BURST: usize = 32;

fn main() {
    let mut rng = StdRng::seed_from_u64(7);
    // Anti-correlated readings: sensors good on one axis are bad on others
    // (the hard regime — large skylines, like AntiCor).
    let stream = krms::data::generators::anticorrelated(&mut rng, STREAM_LEN, D);

    // Prime the window.
    let initial: Vec<Point> = stream[..WINDOW].to_vec();
    let mut window: VecDeque<Point> = initial.iter().cloned().collect();
    let mut fd = FdRms::builder(D)
        .k(2) // tolerate one stale reading: compare against the 2nd-ranked
        .r(R)
        .epsilon(0.03)
        .max_utilities(1 << 11)
        .seed(9)
        .build(initial)
        .expect("valid configuration");

    let est = RegretEstimator::new(D, 20_000, 99);
    let mut timer = krms::eval::UpdateTimer::new();
    let checkpoint = (STREAM_LEN - WINDOW) / 8;

    println!("processed  window  |Q|   mrr_2   avg_batch_ms  throughput_ops_s");
    let mut processed = 0usize;
    for burst in stream[WINDOW..].chunks(BURST) {
        // One engine call per burst: evict the oldest |burst| readings,
        // ingest the new ones.
        let mut ops: Vec<Op> = Vec::with_capacity(2 * burst.len());
        for reading in burst {
            let evicted = window.pop_front().expect("window full");
            window.push_back(reading.clone());
            ops.push(Op::Delete(evicted.id()));
            ops.push(Op::Insert(reading.clone()));
        }
        let ops_in_batch = ops.len();
        timer.record(|| fd.apply_batch(ops).expect("window ids are fresh/live"));
        processed += burst.len();

        if processed % checkpoint < BURST && processed >= checkpoint {
            let live: Vec<Point> = window.iter().cloned().collect();
            let q = fd.result();
            let mrr = est.mrr(&live, &q, 2);
            let ops_s = if timer.avg_ms() > 0.0 {
                (ops_in_batch as f64) * 1_000.0 / timer.avg_ms()
            } else {
                f64::INFINITY
            };
            println!(
                "{:>9}  {:>6}  {:>3}  {:>6.4}  {:>12.3}  {:>16.0}",
                processed,
                window.len(),
                q.len(),
                mrr,
                timer.avg_ms(),
                ops_s
            );
        }
    }
    println!(
        "\nsustained {:.0} window-slides/s over {} batches of {} ops (m = {})",
        (BURST as f64) * 1_000.0 / timer.avg_ms().max(1e-9),
        timer.count(),
        2 * BURST,
        fd.m()
    );
}
