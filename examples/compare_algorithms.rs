//! Runs every k-RMS algorithm in the repository on one dataset and prints
//! a comparison table (a miniature of the paper's Fig. 6).
//!
//! ```sh
//! cargo run --release --example compare_algorithms [-- <dataset> <r>]
//! ```

use krms::baselines::{
    DmmGreedy, DmmRrms, EpsKernel, GeoGreedy, Greedy, GreedyStar, HittingSet, Sphere, StaticRms,
};
use krms::prelude::*;
use krms::skyline::skyline;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let dataset = args.get(1).map(String::as_str).unwrap_or("Indep");
    let r: usize = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(10);

    let spec = krms::data::dataset_by_name(dataset)
        .unwrap_or_else(|| panic!("unknown dataset {dataset}"))
        .spec()
        .scaled(0.02); // keep the example snappy; benches run larger
    let points = spec.generate();
    let sky = skyline(&points);
    let d = spec.d;
    println!(
        "dataset {dataset}: n = {}, d = {d}, |skyline| = {}, r = {r}, k = 1\n",
        points.len(),
        sky.len()
    );

    let est = RegretEstimator::new(d, 50_000, 17);
    println!(
        "{:<12} {:>6} {:>10} {:>9}",
        "algorithm", "|Q|", "time_ms", "mrr_1"
    );

    // FD-RMS (initialisation time reported; updates are its strong suit).
    let sw = krms::eval::Stopwatch::start();
    let fd = FdRms::builder(d)
        .r(r)
        .epsilon(0.02)
        .max_utilities(1 << 12)
        .build(points.clone())
        .expect("valid configuration");
    let q = fd.result();
    println!(
        "{:<12} {:>6} {:>10.2} {:>9.4}",
        "FD-RMS",
        q.len(),
        sw.elapsed_ms(),
        est.mrr(&points, &q, 1)
    );

    let algos: Vec<Box<dyn StaticRms>> = vec![
        Box::new(Greedy),
        Box::new(GeoGreedy),
        Box::new(GreedyStar::default()),
        Box::new(DmmRrms::default()),
        Box::new(DmmGreedy::default()),
        Box::new(EpsKernel::default()),
        Box::new(HittingSet::default()),
        Box::new(Sphere::default()),
    ];
    for algo in algos {
        let sw = krms::eval::Stopwatch::start();
        let q = algo.compute(&sky, &points, 1, r);
        let ms = sw.elapsed_ms();
        println!(
            "{:<12} {:>6} {:>10.2} {:>9.4}",
            algo.name(),
            q.len(),
            ms,
            est.mrr(&points, &q, 1)
        );
    }
}
