//! Quickstart: maintain a k-regret minimizing set over a dynamic database.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use krms::prelude::*;
use rand::{rngs::StdRng, SeedableRng};

fn main() {
    // 1. Generate a small independent dataset (2 000 tuples, 4 attributes).
    let mut rng = StdRng::seed_from_u64(42);
    let points = krms::data::generators::independent(&mut rng, 2_000, 4);

    // 2. Build FD-RMS: maintain a size-10 set whose top-1 tuple is close to
    //    every user's top-1 choice (k = 1), for any linear preference.
    let mut fd = FdRms::builder(4)
        .k(1)
        .r(10)
        .epsilon(0.02)
        .max_utilities(1 << 12)
        .seed(7)
        .build(points.clone())
        .expect("valid configuration");

    let est = RegretEstimator::new(4, 50_000, 123);
    let q0 = fd.result();
    println!(
        "initial result ({} tuples): {:?}",
        q0.len(),
        fd.result_ids()
    );
    println!("  mrr_1 = {:.4}", est.mrr(&points, &q0, 1));

    // 3. Stream updates: insert 500 new tuples, delete 500 old ones.
    let mut live = points;
    let inserts = krms::data::generators::independent(&mut rng, 500, 4);
    for p in inserts {
        let p = p.with_id(p.id() + 1_000_000);
        live.push(p.clone());
        fd.insert(p).expect("fresh id");
    }
    for id in 0..500u64 {
        live.retain(|p| p.id() != id);
        fd.delete(id).expect("live id");
    }

    // 4. The result is still size-≤10 and still high quality — no
    //    from-scratch recomputation happened.
    let q = fd.result();
    println!(
        "after 1000 updates ({} tuples live): {:?}",
        fd.len(),
        fd.result_ids()
    );
    println!("  mrr_1 = {:.4}", est.mrr(&live, &q, 1));
    println!(
        "  universe size m = {}, stabilize moves = {}",
        fd.m(),
        fd.stabilize_moves()
    );
}
