//! # krms — fully dynamic k-regret minimizing sets
//!
//! Facade crate for the reproduction of *"A Fully Dynamic Algorithm for
//! k-Regret Minimizing Sets"* (Wang, Li, Wong, Tan — ICDE 2021). It
//! re-exports the public API of every workspace crate so that examples,
//! integration tests, and downstream users need a single dependency.
//!
//! ## Quick start
//!
//! ```
//! use krms::prelude::*;
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! // Generate a small independent dataset and run FD-RMS on it.
//! let mut rng = StdRng::seed_from_u64(42);
//! let points = krms::data::generators::independent(&mut rng, 500, 4);
//! let mut fd = FdRms::builder(4)
//!     .k(1)
//!     .r(10)
//!     .epsilon(0.01)
//!     .max_utilities(1 << 10)
//!     .seed(7)
//!     .build(points.clone())
//!     .unwrap();
//! let q0 = fd.result();
//! assert!(q0.len() <= 10);
//!
//! // Insert a new tuple and delete an old one; the result stays maintained.
//! let p_new = Point::new(10_000, vec![0.99, 0.98, 0.97, 0.96]).unwrap();
//! fd.insert(p_new).unwrap();
//! fd.delete(points[0].id()).unwrap();
//! assert!(fd.result().len() <= 10);
//! ```

pub use fdrms as core;
pub use rms_baselines as baselines;
pub use rms_data as data;
pub use rms_eval as eval;
pub use rms_geom as geom;
pub use rms_index as index;
pub use rms_lp as lp;
pub use rms_metrics as metrics;
pub use rms_serve as serve;
pub use rms_setcover as setcover;
pub use rms_skyline as skyline;

/// The most commonly used items, for glob import in examples and tests.
pub mod prelude {
    pub use crate::core::{BatchReport, FdRms, FdRmsBuilder, FdRmsError, Op};
    pub use crate::engine_ops;
    pub use crate::eval::{max_regret_ratio, RegretEstimator};
    pub use crate::geom::{Point, PointId, Utility};
    pub use crate::serve::{
        AggregateSnapshot, BackendView, DeltaReceiver, ResultSnapshot, RmsBackend,
        RmsBackendHandle, RmsHandle, RmsServer, RmsService, ServeConfig, ShardedHandle,
        ShardedRmsService, SnapshotDelta,
    };
    pub use crate::skyline::{skyline, DynamicSkyline};
}

/// Converts a workload operation stream (crate `rms-data`) into the batch
/// engine's op representation (crate `fdrms`). The two layers define
/// their own types — the data layer must not depend on the algorithm
/// layer — so the facade provides the bridge:
///
/// ```
/// use krms::prelude::*;
///
/// let points: Vec<Point> = (0..60)
///     .map(|i| Point::new(i, vec![(i as f64) / 60.0, 1.0 - (i as f64) / 60.0]).unwrap())
///     .collect();
/// let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(3);
/// let workload = krms::data::mixed_workload(&mut rng, points, Default::default());
/// let mut fd = FdRms::builder(2)
///     .r(3)
///     .max_utilities(64)
///     .build(workload.initial.clone())
///     .unwrap();
/// for batch in workload.batches(16) {
///     fd.apply_batch(engine_ops(batch)).unwrap();
/// }
/// assert!(fd.result().len() <= 3);
/// ```
pub fn engine_ops(ops: &[data::Operation]) -> Vec<core::Op> {
    ops.iter()
        .map(|op| match op {
            data::Operation::Insert(p) => core::Op::Insert(p.clone()),
            data::Operation::Delete(id) => core::Op::Delete(*id),
            data::Operation::Update(p) => core::Op::Update(p.clone()),
        })
        .collect()
}
