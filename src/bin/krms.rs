//! `krms` — command-line front end for the k-regret minimizing set
//! library.
//!
//! ```text
//! krms generate --dataset AntiCor --n 10000 --d 6 --out data.krms
//! krms run      --in data.krms --algo FD-RMS --r 10 [--k 1] [--eps 0.02]
//! krms workload --in data.krms --algo FD-RMS --r 10 [--ops 500]
//! krms serve    --in data.krms --r 10 [--addr 127.0.0.1:7878]
//! krms skyline  --in data.krms
//! ```
//!
//! Datasets are stored in the compact binary format of
//! `krms::data::cache` (magic `KRMS`).

use krms::baselines::{
    DmmGreedy, DmmRrms, DynamicAdapter, EpsKernel, GeoGreedy, Greedy, GreedyStar, HittingSet,
    Sphere, StaticRms, TwoDSweep,
};
use krms::prelude::*;
use rand::{rngs::StdRng, SeedableRng};
use std::collections::HashMap;
use std::path::Path;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };
    if args.iter().any(|a| a == "--help" || a == "-h") || cmd == "help" {
        println!("{USAGE}");
        return ExitCode::SUCCESS;
    }
    let result = parse_flags(&args[1..]).and_then(|flags| match cmd.as_str() {
        "generate" => cmd_generate(&flags),
        "run" => cmd_run(&flags),
        "workload" => cmd_workload(&flags),
        "serve" => cmd_serve(&flags),
        "skyline" => cmd_skyline(&flags),
        other => Err(format!("unknown command `{other}`\n{USAGE}")),
    });
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "krms — k-regret minimizing sets

USAGE:
  krms generate --dataset <BB|AQ|CT|Movie|Indep|AntiCor> [--n N] [--d D]
                [--seed S] --out FILE
  krms run      --in FILE --algo ALGO --r R [--k K] [--eps E] [--eval N]
  krms workload --in FILE --algo ALGO --r R [--k K] [--ops N] [--eval N]
                [--batch B]   (B > 1 streams FD-RMS updates through the
                               batch engine, B operations at a time)
  krms serve    --in FILE --r R [--k K] [--eps E] [--max-m M]
                [--addr HOST:PORT] [--queue Q] [--max-batch B]
                [--shards S]     (S > 1: id-partitioned shard group —
                                  mutations route by id % S, QUERY merges
                                  the per-shard solutions)
                [--wal PATH]     (write-ahead op log: acknowledged ops
                                  are logged before the ack and replayed
                                  on restart; with --shards S, shard i
                                  logs to PATH.i)
                [--wal-fsync true|false]  (fsync the log once per applied
                                  batch: survives power loss, not just
                                  process death; default false)
                [--mrr-dirs N] [--mrr-every E] [--mrr-seed S]
                                 (Monte-Carlo max-regret-ratio estimate in
                                  STATS: N test directions, refreshed
                                  every E epochs, sampled from seed S)
                [--metrics-addr HOST:PORT]  (HTTP scrape endpoint: GET
                                  /metrics answers the same Prometheus
                                  text exposition as the METRICS verb)
                [--net-threads N]  (reactor threads serving connections;
                                  accepted sockets are dealt round-robin
                                  across the group; default 1)
                                 (TCP front end over the serving backend;
                                  line protocol v1: INSERT/DELETE/UPDATE/
                                  QUERY/STATS/SHUTDOWN, one reply per line;
                                  v2 after HELLO v2: BATCH <n> pipelining,
                                  SUBSCRIBE [every=K] [ids=LO..HI] delta
                                  push — server-side id-range filtering —
                                  and METRICS Prometheus exposition)
  krms skyline  --in FILE

ALGO: FD-RMS | Greedy | GeoGreedy | Greedy* | DMM-RRMS | DMM-Greedy |
      eps-Kernel | HS | Sphere | 2D-Sweep";

/// Parses `--key value` pairs. Every flag takes exactly one value;
/// a flag followed by another `--flag` (or by nothing) is an error, as is
/// any positional token — silently swallowing either is how `--addr
/// --queue 64` once set `addr="--queue"` and dropped the queue size.
fn parse_flags(args: &[String]) -> Result<HashMap<String, String>, String> {
    let mut map = HashMap::new();
    let mut i = 0;
    while i < args.len() {
        let Some(key) = args[i].strip_prefix("--") else {
            return Err(format!(
                "unexpected positional argument `{}` (flags are --key value pairs)",
                args[i]
            ));
        };
        if key.is_empty() {
            return Err("bare `--` is not a flag".into());
        }
        match args.get(i + 1) {
            None => return Err(format!("flag --{key} is missing its value")),
            Some(val) if val.starts_with("--") => {
                return Err(format!(
                    "flag --{key} is missing its value (found flag `{val}` instead)"
                ));
            }
            Some(val) => {
                map.insert(key.to_string(), val.clone());
            }
        }
        i += 2;
    }
    Ok(map)
}

fn get<T: std::str::FromStr>(
    flags: &HashMap<String, String>,
    key: &str,
    default: T,
) -> Result<T, String> {
    match flags.get(key) {
        None => Ok(default),
        Some(v) => v
            .parse()
            .map_err(|_| format!("invalid --{key} value `{v}`")),
    }
}

fn load_points(flags: &HashMap<String, String>) -> Result<Vec<Point>, String> {
    let path = flags.get("in").ok_or("missing --in FILE")?;
    krms::data::cache::load(Path::new(path)).ok_or(format!("cannot read dataset from {path}"))
}

fn static_algo(name: &str, d: usize) -> Result<Option<Box<dyn StaticRms>>, String> {
    if name.eq_ignore_ascii_case("2d-sweep") && d != 2 {
        return Err(format!("2D-Sweep requires d = 2 (dataset has d = {d})"));
    }
    Ok(Some(match name.to_ascii_lowercase().as_str() {
        "greedy" => Box::new(Greedy),
        "geogreedy" => Box::new(GeoGreedy),
        "greedy*" => Box::new(GreedyStar::default()),
        "dmm-rrms" => Box::new(DmmRrms::default()),
        "dmm-greedy" => Box::new(DmmGreedy::default()),
        "eps-kernel" => Box::new(EpsKernel::default()),
        "hs" => Box::new(HittingSet::default()),
        "sphere" => Box::new(Sphere::default()),
        "2d-sweep" => Box::new(TwoDSweep::default()),
        _ => return Ok(None),
    }))
}

fn cmd_generate(flags: &HashMap<String, String>) -> Result<(), String> {
    let name = flags.get("dataset").ok_or("missing --dataset")?;
    let ds = krms::data::dataset_by_name(name).ok_or(format!("unknown dataset {name}"))?;
    let mut spec = ds.spec();
    spec = spec.with_n(get(flags, "n", spec.n)?);
    spec = spec.with_d(get(flags, "d", spec.d)?);
    spec = spec.with_seed(get(flags, "seed", spec.seed)?);
    let out = flags.get("out").ok_or("missing --out FILE")?;
    let points = spec.generate();
    krms::data::cache::save(Path::new(out), &points).map_err(|e| e.to_string())?;
    println!("wrote {} tuples (d = {}) to {out}", points.len(), spec.d);
    Ok(())
}

fn cmd_run(flags: &HashMap<String, String>) -> Result<(), String> {
    let points = load_points(flags)?;
    let d = points.first().map(Point::dim).ok_or("empty dataset")?;
    let algo = flags.get("algo").ok_or("missing --algo")?;
    let r: usize = get(flags, "r", 10)?;
    let k: usize = get(flags, "k", 1)?;
    let eval: usize = get(flags, "eval", 20_000)?;
    let est = RegretEstimator::new(d, eval.max(d), 0xE7A1);

    let sw = krms::eval::Stopwatch::start();
    let q = if algo.eq_ignore_ascii_case("fd-rms") {
        let eps: f64 = get(flags, "eps", 0.02)?;
        let max_m: usize = get(flags, "max-m", 1 << 12)?;
        FdRms::builder(d)
            .k(k)
            .r(r)
            .epsilon(eps)
            .max_utilities(max_m)
            .build(points.clone())
            .map_err(|e| e.to_string())?
            .result()
    } else {
        let a = static_algo(algo, d)?.ok_or(format!("unknown algorithm {algo}"))?;
        if !a.supports_k(k) {
            return Err(format!("{} does not support k = {k}", a.name()));
        }
        let sky = skyline(&points);
        a.compute(&sky, &points, k, r)
    };
    let ms = sw.elapsed_ms();
    println!("algorithm : {algo}");
    println!(
        "result    : {:?}",
        q.iter().map(Point::id).collect::<Vec<_>>()
    );
    println!("|Q|       : {}", q.len());
    println!("time      : {ms:.2} ms");
    println!("mrr_{k}     : {:.5}", est.mrr(&points, &q, k));
    Ok(())
}

fn cmd_workload(flags: &HashMap<String, String>) -> Result<(), String> {
    let points = load_points(flags)?;
    let d = points.first().map(Point::dim).ok_or("empty dataset")?;
    let algo = flags.get("algo").ok_or("missing --algo")?;
    let r: usize = get(flags, "r", 10)?;
    let k: usize = get(flags, "k", 1)?;
    let ops_cap: usize = get(flags, "ops", usize::MAX)?;
    let eval: usize = get(flags, "eval", 10_000)?;
    let est = RegretEstimator::new(d, eval.max(d), 0xE7A1);

    let mut rng = StdRng::seed_from_u64(get(flags, "seed", 0u64)?);
    let mut w = krms::data::paper_workload(&mut rng, points, Default::default());
    if w.operations.len() > ops_cap {
        w.operations.truncate(ops_cap);
        let total = w.operations.len().max(1);
        w.checkpoints = (1..=10).map(|i| (total * i / 10).max(1) - 1).collect();
    }
    let mut live = w.initial.clone();
    let mut timer = krms::eval::UpdateTimer::new();

    println!("op%   n_live   |Q|   mrr_{k}    avg_update_ms");
    enum Runner {
        Fd(Box<FdRms>),
        Ad(Box<DynamicAdapter<BoxedStatic>>),
    }
    struct BoxedStatic(Box<dyn StaticRms>);
    impl StaticRms for BoxedStatic {
        fn name(&self) -> &'static str {
            self.0.name()
        }
        fn supports_k(&self, k: usize) -> bool {
            self.0.supports_k(k)
        }
        fn compute(&self, s: &[Point], f: &[Point], k: usize, r: usize) -> Vec<Point> {
            self.0.compute(s, f, k, r)
        }
    }
    let mut runner = if algo.eq_ignore_ascii_case("fd-rms") {
        let eps: f64 = get(flags, "eps", 0.02)?;
        let max_m: usize = get(flags, "max-m", 1 << 12)?;
        Runner::Fd(Box::new(
            FdRms::builder(d)
                .k(k)
                .r(r)
                .epsilon(eps)
                .max_utilities(max_m)
                .build(w.initial.clone())
                .map_err(|e| e.to_string())?,
        ))
    } else {
        let a = static_algo(algo, d)?.ok_or(format!("unknown algorithm {algo}"))?;
        Runner::Ad(Box::new(
            DynamicAdapter::new(BoxedStatic(a), k, r, w.initial.clone())
                .map_err(|e| e.to_string())?,
        ))
    };

    let batch: usize = get(flags, "batch", 1)?;
    if batch > 1 {
        // Batched FD-RMS path: stream the operations through the batch
        // update engine, `batch` at a time.
        let Runner::Fd(fd) = &mut runner else {
            return Err("--batch requires --algo FD-RMS".into());
        };
        let mut applied = 0usize;
        let mut next_cp = 0usize;
        for chunk in w.batches(batch) {
            for op in chunk {
                match op {
                    krms::data::Operation::Insert(p) => live.push(p.clone()),
                    krms::data::Operation::Delete(id) => live.retain(|q| q.id() != *id),
                    krms::data::Operation::Update(p) => {
                        if let Some(slot) = live.iter_mut().find(|q| q.id() == p.id()) {
                            *slot = p.clone();
                        }
                    }
                }
            }
            timer.record(|| {
                fd.apply_batch(krms::engine_ops(chunk))
                    .expect("workload operations are valid")
            });
            applied += chunk.len();
            // Report every checkpoint this batch crossed.
            while next_cp < w.checkpoints.len() && w.checkpoints[next_cp] < applied {
                next_cp += 1;
                let q = fd.result();
                println!(
                    "{:>3}   {:>6}   {:>3}   {:.4}   {:>12.4}",
                    next_cp * 10,
                    live.len(),
                    q.len(),
                    est.mrr(&live, &q, k),
                    timer.avg_ms()
                );
            }
        }
        println!(
            "batched: {} ops in batches of {batch}, avg {:.4} ms/batch",
            applied,
            timer.avg_ms()
        );
        return Ok(());
    }

    let mut next_cp = 0;
    for (i, op) in w.operations.iter().enumerate() {
        match op {
            krms::data::Operation::Insert(p) => {
                live.push(p.clone());
                match &mut runner {
                    Runner::Fd(fd) => {
                        timer.record(|| fd.insert(p.clone()).expect("fresh id"));
                    }
                    Runner::Ad(ad) => {
                        let needs = ad.insert_lazy(p.clone()).expect("fresh id");
                        if needs {
                            timer.record(|| ad.recompute());
                        } else {
                            timer.add(std::time::Duration::ZERO);
                        }
                    }
                }
            }
            krms::data::Operation::Delete(id) => {
                live.retain(|q| q.id() != *id);
                match &mut runner {
                    Runner::Fd(fd) => {
                        timer.record(|| fd.delete(*id).expect("live id"));
                    }
                    Runner::Ad(ad) => {
                        let needs = ad.delete_lazy(*id).expect("live id");
                        if needs {
                            timer.record(|| ad.recompute());
                        } else {
                            timer.add(std::time::Duration::ZERO);
                        }
                    }
                }
            }
            krms::data::Operation::Update(p) => {
                if let Some(slot) = live.iter_mut().find(|q| q.id() == p.id()) {
                    *slot = p.clone();
                }
                match &mut runner {
                    Runner::Fd(fd) => {
                        timer.record(|| fd.update(p.clone()).expect("live id"));
                    }
                    Runner::Ad(ad) => {
                        let del = ad.delete_lazy(p.id()).expect("live id");
                        let ins = ad.insert_lazy(p.clone()).expect("id just freed");
                        if del || ins {
                            timer.record(|| ad.recompute());
                        } else {
                            timer.add(std::time::Duration::ZERO);
                        }
                    }
                }
            }
        }
        if next_cp < w.checkpoints.len() && w.checkpoints[next_cp] == i {
            next_cp += 1;
            let q = match &runner {
                Runner::Fd(fd) => fd.result(),
                Runner::Ad(ad) => ad.result().to_vec(),
            };
            println!(
                "{:>3}   {:>6}   {:>3}   {:.4}   {:>12.4}",
                next_cp * 10,
                live.len(),
                q.len(),
                est.mrr(&live, &q, k),
                timer.avg_ms()
            );
        }
    }
    Ok(())
}

/// Binds, serves, and summarizes any started backend — the single
/// service and the shard group share this path end to end (the
/// `RmsBackend` trait carries everything the front end needs).
fn serve_backend<B: krms::serve::RmsBackend>(
    backend: B,
    addr: &str,
    metrics_addr: Option<&str>,
    net_threads: usize,
    banner: &str,
) -> Result<(), String> {
    use krms::serve::RmsServer;

    if let Some(maddr) = metrics_addr {
        let registry = std::sync::Arc::clone(backend.registry());
        let listener =
            std::net::TcpListener::bind(maddr).map_err(|e| format!("bind metrics {maddr}: {e}"))?;
        let bound = listener.local_addr().map_err(|e| e.to_string())?;
        std::thread::Builder::new()
            .name("rms-metrics-http".into())
            .spawn(move || serve_metrics_http(&listener, &registry))
            .map_err(|e| format!("spawn metrics listener: {e}"))?;
        println!("metrics: http://{bound}/metrics");
    }
    let server = RmsServer::bind(addr, backend)
        .map_err(|e| format!("bind {addr}: {e}"))?
        .with_net_threads(net_threads);
    println!(
        "{banner} on {}",
        server.local_addr().map_err(|e| e.to_string())?
    );
    println!("protocol: INSERT <id> <v1..vd> | DELETE <id> | UPDATE <id> <v1..vd> | QUERY | STATS | SHUTDOWN");
    println!(
        "       v2: HELLO v2 | BATCH <n> (one ack for n ops) | SUBSCRIBE [every=K] [ids=LO..HI] (DELTA push) | METRICS"
    );
    let fds = server.run().map_err(|e| e.to_string())?;
    let ops: u64 = fds.iter().map(FdRms::operations).sum();
    let live: usize = fds.iter().map(FdRms::len).sum();
    let solution: usize = fds.iter().map(|fd| fd.result().len()).sum();
    println!(
        "shut down after {ops} ops across {} shard(s); final n = {live}, Σ|Q_s| = {solution}",
        fds.len()
    );
    Ok(())
}

/// Minimal HTTP scrape endpoint for the `--metrics-addr` listener:
/// answers `GET /metrics` with the registry's Prometheus text
/// exposition, 404 for any other target; one request per connection
/// (`Connection: close`), which is all a Prometheus scraper needs.
fn serve_metrics_http(listener: &std::net::TcpListener, registry: &krms::metrics::Registry) {
    use std::io::{BufRead, BufReader, Write};

    for stream in listener.incoming() {
        let Ok(stream) = stream else {
            std::thread::sleep(std::time::Duration::from_millis(20));
            continue;
        };
        let mut reader = BufReader::new(&stream);
        let mut request = String::new();
        if reader.read_line(&mut request).is_err() {
            continue;
        }
        // Drain the request headers up to the blank line; nothing in
        // them changes the response.
        let mut header = String::new();
        loop {
            header.clear();
            match reader.read_line(&mut header) {
                Ok(0) | Err(_) => break,
                Ok(_) if header.trim().is_empty() => break,
                Ok(_) => {}
            }
        }
        let scrape = {
            let mut parts = request.split_whitespace();
            parts.next() == Some("GET")
                && matches!(parts.next(), Some("/metrics") | Some("/metrics/"))
        };
        let (status, body) = if scrape {
            ("200 OK", registry.encode())
        } else {
            ("404 Not Found", "not found\n".to_string())
        };
        let mut writer = &stream;
        let _ = write!(
            writer,
            "HTTP/1.1 {status}\r\nContent-Type: text/plain; version=0.0.4; charset=utf-8\r\n\
             Content-Length: {}\r\nConnection: close\r\n\r\n{body}",
            body.len()
        );
    }
}

fn cmd_serve(flags: &HashMap<String, String>) -> Result<(), String> {
    use krms::serve::{RmsService, ServeConfig, ShardedRmsService};
    use std::path::PathBuf;

    let points = load_points(flags)?;
    let d = points.first().map(Point::dim).ok_or("empty dataset")?;
    let r: usize = get(flags, "r", 10)?;
    let k: usize = get(flags, "k", 1)?;
    let eps: f64 = get(flags, "eps", 0.02)?;
    let max_m: usize = get(flags, "max-m", 1 << 12)?;
    let shards: usize = get(flags, "shards", 1)?;
    if shards == 0 {
        return Err("--shards must be at least 1".into());
    }
    let wal: Option<PathBuf> = flags.get("wal").map(PathBuf::from);
    let addr = flags
        .get("addr")
        .cloned()
        .unwrap_or_else(|| "127.0.0.1:7878".to_string());
    let metrics_addr = flags.get("metrics-addr").cloned();
    let net_threads: usize = get(flags, "net-threads", 1usize)?;
    if net_threads == 0 {
        return Err("--net-threads must be at least 1".into());
    }
    let defaults = ServeConfig::default();
    let cfg = ServeConfig {
        queue_capacity: get(flags, "queue", 1024usize)?,
        max_batch: get(flags, "max-batch", 512usize)?,
        mrr_directions: get(flags, "mrr-dirs", 0usize)?,
        mrr_every: get(flags, "mrr-every", defaults.mrr_every)?,
        mrr_seed: get(flags, "mrr-seed", defaults.mrr_seed)?,
        wal_fsync: get(flags, "wal-fsync", false)?,
    };
    if cfg.wal_fsync && wal.is_none() {
        return Err("--wal-fsync true requires --wal PATH".into());
    }
    // Single↔sharded WAL mismatches are refused by the serve layer
    // itself: `RmsService::start_with_wal` rejects a path with a
    // `.meta` sidecar (a shard group's logs), and the shard group
    // rejects a bare single-service log or a different shard count.

    let n = points.len();
    let builder = FdRms::builder(d)
        .k(k)
        .r(r)
        .epsilon(eps)
        .max_utilities(max_m);
    let banner = format!(
        "serving FD-RMS (n = {n}, d = {d}, k = {k}, r = {r}, eps = {eps}, shards = {shards}{})",
        wal.as_deref()
            .map(|p| format!(", wal = {}", p.display()))
            .unwrap_or_default(),
    );
    if shards > 1 {
        let service = match &wal {
            Some(path) => ShardedRmsService::start_with_wal(builder, points, cfg, shards, path)
                .map_err(|e| e.to_string())?,
            None => {
                ShardedRmsService::start(builder, points, cfg, shards).map_err(|e| e.to_string())?
            }
        };
        serve_backend(
            service,
            &addr,
            metrics_addr.as_deref(),
            net_threads,
            &banner,
        )
    } else {
        let service = match &wal {
            Some(path) => {
                RmsService::start_with_wal(builder, points, cfg, path).map_err(|e| e.to_string())?
            }
            None => RmsService::start(builder, points, cfg).map_err(|e| e.to_string())?,
        };
        serve_backend(
            service,
            &addr,
            metrics_addr.as_deref(),
            net_threads,
            &banner,
        )
    }
}

fn cmd_skyline(flags: &HashMap<String, String>) -> Result<(), String> {
    let points = load_points(flags)?;
    let sw = krms::eval::Stopwatch::start();
    let sky = skyline(&points);
    println!(
        "n = {}, d = {}, |skyline| = {} ({:.2}%), computed in {:.2} ms",
        points.len(),
        points.first().map(Point::dim).unwrap_or(0),
        sky.len(),
        100.0 * sky.len() as f64 / points.len().max(1) as f64,
        sw.elapsed_ms()
    );
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::parse_flags;

    fn args(raw: &[&str]) -> Vec<String> {
        raw.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parses_key_value_pairs() {
        let flags = parse_flags(&args(&["--in", "x.krms", "--r", "10"])).unwrap();
        assert_eq!(flags.get("in").map(String::as_str), Some("x.krms"));
        assert_eq!(flags.get("r").map(String::as_str), Some("10"));
        assert!(parse_flags(&[]).unwrap().is_empty());
    }

    #[test]
    fn missing_value_does_not_swallow_the_next_flag() {
        // The regression: `--addr --queue 64` once set addr="--queue"
        // and silently dropped the queue size.
        let err = parse_flags(&args(&["--in", "x", "--addr", "--queue", "64"])).unwrap_err();
        assert!(err.contains("--addr"), "{err}");
        assert!(err.contains("--queue"), "{err}");
    }

    #[test]
    fn trailing_flag_without_value_errors() {
        let err = parse_flags(&args(&["--in", "x", "--queue"])).unwrap_err();
        assert!(err.contains("--queue"), "{err}");
    }

    #[test]
    fn positional_arguments_error() {
        let err = parse_flags(&args(&["stray"])).unwrap_err();
        assert!(err.contains("stray"), "{err}");
        let err = parse_flags(&args(&["--in", "x", "stray"])).unwrap_err();
        assert!(err.contains("stray"), "{err}");
        assert!(parse_flags(&args(&["--"])).is_err());
    }

    #[test]
    fn values_may_look_like_anything_but_flags() {
        // Single-dash and negative-number values are legitimate.
        let flags = parse_flags(&args(&["--out", "-", "--seed", "-5"])).unwrap();
        assert_eq!(flags.get("out").map(String::as_str), Some("-"));
        assert_eq!(flags.get("seed").map(String::as_str), Some("-5"));
    }
}
