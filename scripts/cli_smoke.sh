#!/usr/bin/env bash
# End-to-end smoke test of the `krms` CLI: generate → run → skyline →
# flag-parser regressions → sharded WAL-backed serve round-trip over
# loopback (INSERT/QUERY/STATS, a Prometheus scrape of the
# --metrics-addr endpoint with per-shard labels, and a SHUTDOWN drain),
# plus a protocol-v2 session (HELLO negotiation, one-ack BATCH ingest,
# SUBSCRIBE delta push, METRICS exposition), using only bash built-ins
# (/dev/tcp) for the client side.
#
# Usage: bash scripts/cli_smoke.sh   (expects target/release/krms to exist,
# or set KRMS_BIN)
set -euo pipefail

BIN=${KRMS_BIN:-target/release/krms}
PORT=${KRMS_SMOKE_PORT:-17878}
MPORT=${KRMS_SMOKE_METRICS_PORT:-$((PORT + 1))}
TMP=$(mktemp -d)
SERVE_PID=""
cleanup() {
    if [ -n "$SERVE_PID" ]; then
        kill "$SERVE_PID" 2>/dev/null || true
    fi
    rm -rf "$TMP"
}
trap cleanup EXIT

fail() { echo "FAIL: $1" >&2; exit 1; }

# Opens fd 3 to the server, retrying while it boots. The fd persists
# past the function; the stderr redirect on the call site swallows the
# expected connection-refused noise from the retries.
connect() {
    for _ in $(seq 1 100); do
        if exec 3<>"/dev/tcp/127.0.0.1/$PORT"; then
            return 0
        fi
        sleep 0.1
    done
    return 1
}

[ -x "$BIN" ] || fail "$BIN not built (run cargo build --release first)"

# --- static analysis one-shot ------------------------------------------
# One clean `rms-analyze --workspace` run rides along with the smoke
# path, so a finding (or an analyzer crash) surfaces even when the
# dedicated CI job is skipped. Skipped when cargo is unavailable (the
# smoke script also runs against prebuilt release binaries).
if command -v cargo >/dev/null 2>&1; then
    cargo run -q --release -p rms-analyze -- --workspace \
        || fail "rms-analyze --workspace found findings"
fi

# --- generate → run → skyline ------------------------------------------
"$BIN" generate --dataset Indep --n 400 --d 3 --seed 7 --out "$TMP/ds.krms" \
    || fail "generate"
[ -s "$TMP/ds.krms" ] || fail "generate wrote no dataset"
"$BIN" run --in "$TMP/ds.krms" --algo FD-RMS --r 8 --eval 2000 | grep -q "mrr" \
    || fail "run FD-RMS"
"$BIN" skyline --in "$TMP/ds.krms" | grep -q "skyline" || fail "skyline"

# --- flag-parser regressions -------------------------------------------
# A flag with a missing value must error, not swallow the next flag.
if "$BIN" serve --in "$TMP/ds.krms" --addr --queue 64 2>/dev/null; then
    fail "missing flag value was not rejected"
fi
# Positional arguments must error.
if "$BIN" run --in "$TMP/ds.krms" stray 2>/dev/null; then
    fail "positional argument was not rejected"
fi
# Unknown command must error.
if "$BIN" frobnicate 2>/dev/null; then
    fail "unknown command was not rejected"
fi

# --- sharded WAL-backed serve round-trip -------------------------------
"$BIN" serve --in "$TMP/ds.krms" --r 8 --addr "127.0.0.1:$PORT" \
    --shards 2 --wal "$TMP/ops.wal" \
    --metrics-addr "127.0.0.1:$MPORT" >"$TMP/serve.log" 2>&1 &
SERVE_PID=$!

connect 2>/dev/null || { cat "$TMP/serve.log" >&2; fail "server never came up"; }

printf 'INSERT 100000 0.9 0.9 0.9\nINSERT 100001 0.8 0.8 0.8\nQUERY\nSTATS\n' >&3
for i in 0 1 2 3; do
    read -r -t 30 -u 3 "replies[$i]" || fail "missing reply $i"
done

[[ "${replies[0]}" == "OK queued" ]] || fail "INSERT reply: ${replies[0]}"
[[ "${replies[1]}" == "OK queued" ]] || fail "INSERT reply: ${replies[1]}"
[[ "${replies[2]}" == OK\ epochs=* ]] || fail "QUERY reply: ${replies[2]}"
[[ "${replies[3]}" == *"shards=2"* ]] || fail "STATS reply: ${replies[3]}"

# --- Prometheus scrape of the --metrics-addr endpoint ------------------
# Stock HTTP over bash /dev/tcp: the reply must be a 200 with a
# well-formed text exposition carrying per-shard labels (--shards 2) and
# families from every instrumented subsystem.
exec 5<>"/dev/tcp/127.0.0.1/$MPORT" || fail "metrics endpoint connect"
printf 'GET /metrics HTTP/1.1\r\nHost: localhost\r\nConnection: close\r\n\r\n' >&5
http=$(cat <&5)
exec 5<&- 5>&-
[[ "$http" == "HTTP/1.1 200 OK"* ]] || fail "metrics scrape status: ${http%%$'\r'*}"
# Body = everything after the blank header/body separator line.
exposition=${http#*$'\r\n\r\n'}
for fam in rms_applier_queue_depth rms_applier_batch_ops rms_applier_apply_seconds \
           rms_applier_publish_seconds rms_applier_ops_applied_total \
           rms_applier_snapshot_publishes_total rms_wal_appends_total \
           rms_wal_fsync_seconds rms_wal_recovered_ops_total rms_shard_merge_hits_total \
           rms_tcp_connections_total rms_tcp_requests_total rms_tcp_request_seconds \
           rms_tcp_subscribers; do
    grep -q "^# TYPE $fam " <<<"$exposition" || fail "metric family $fam missing from scrape"
done
fam_count=$(grep -c '^# TYPE ' <<<"$exposition")
[ "$fam_count" -ge 12 ] || fail "expected >= 12 metric families, got $fam_count"
grep -q 'shard="0"' <<<"$exposition" || fail "shard=\"0\" label missing"
grep -q 'shard="1"' <<<"$exposition" || fail "shard=\"1\" label missing"
# Both acknowledged inserts reached the per-shard WALs.
grep -q '^rms_wal_appends_total{shard="0"} 1$' <<<"$exposition" \
    || fail "shard 0 WAL append count wrong"
grep -q '^rms_wal_appends_total{shard="1"} 1$' <<<"$exposition" \
    || fail "shard 1 WAL append count wrong"
# Well-formed: every non-comment line is `name[{labels}] value`.
if grep -vE '^(#.*|[a-z0-9_]+(\{[^}]*\})? -?[0-9+][^ ]*)$' <<<"$exposition" | grep -q .; then
    fail "malformed exposition line: $(grep -vE '^(#.*|[a-z0-9_]+(\{[^}]*\})? -?[0-9+][^ ]*)$' <<<"$exposition" | head -1)"
fi
# Anything but GET /metrics is a 404.
exec 5<>"/dev/tcp/127.0.0.1/$MPORT" || fail "metrics endpoint reconnect"
printf 'GET /other HTTP/1.1\r\nHost: localhost\r\nConnection: close\r\n\r\n' >&5
notfound=$(cat <&5)
exec 5<&- 5>&-
[[ "$notfound" == "HTTP/1.1 404 Not Found"* ]] || fail "non-/metrics target not a 404"

printf 'SHUTDOWN\n' >&3
read -r -t 30 -u 3 bye_sharded || fail "no SHUTDOWN reply"
[[ "$bye_sharded" == "OK shutting down" ]] || fail "SHUTDOWN reply: $bye_sharded"
exec 3<&- 3>&-

# The SHUTDOWN drain must let the process exit cleanly...
drained=""
for _ in $(seq 1 100); do
    if ! kill -0 "$SERVE_PID" 2>/dev/null; then
        drained=1
        break
    fi
    sleep 0.1
done
[ -n "$drained" ] || { cat "$TMP/serve.log" >&2; fail "server did not drain after SHUTDOWN"; }
wait "$SERVE_PID" || { cat "$TMP/serve.log" >&2; fail "server exited non-zero"; }
SERVE_PID=""
grep -q "shut down after" "$TMP/serve.log" || fail "missing drain summary"

# ...and graceful shutdown compacts the per-shard write-ahead logs.
{ [ -f "$TMP/ops.wal.0" ] && [ -f "$TMP/ops.wal.1" ]; } || fail "per-shard WALs missing"

# A restart from the compacted logs recovers the state (n = 402) without
# a living writer.
"$BIN" serve --in "$TMP/ds.krms" --r 8 --addr "127.0.0.1:$PORT" \
    --shards 2 --wal "$TMP/ops.wal" >"$TMP/serve2.log" 2>&1 &
SERVE_PID=$!
connect 2>/dev/null || { cat "$TMP/serve2.log" >&2; fail "restarted server never came up"; }
printf 'QUERY\nSHUTDOWN\n' >&3
mapfile -t replies <&3
exec 3<&- 3>&-
[[ "${replies[0]}" == *"n=402"* ]] || fail "restart lost state: ${replies[0]}"
wait "$SERVE_PID" || fail "restarted server exited non-zero"
SERVE_PID=""

# --- protocol v2: HELLO + BATCH + SUBSCRIBE over loopback ---------------
"$BIN" serve --in "$TMP/ds.krms" --r 8 --addr "127.0.0.1:$PORT" \
    >"$TMP/serve3.log" 2>&1 &
SERVE_PID=$!
connect 2>/dev/null || { cat "$TMP/serve3.log" >&2; fail "v2 server never came up"; }

# fd 3: the subscriber. Negotiate v2, then switch to push mode.
printf 'HELLO v2\nSUBSCRIBE every=1\n' >&3
read -r -u 3 hello_reply || fail "no HELLO reply"
[[ "$hello_reply" == OK\ v2\ * ]] || fail "HELLO reply: $hello_reply"
read -r -u 3 sub_reply || fail "no SUBSCRIBE reply"
[[ "$sub_reply" == "OK subscribed every=1 epoch="* ]] || fail "SUBSCRIBE reply: $sub_reply"

# fd 6: a server-side *filtered* subscriber. Its ack echoes the range,
# and the deltas it receives are sliced before they cross the wire.
exec 6<>"/dev/tcp/127.0.0.1/$PORT" || fail "filtered subscriber connect"
printf 'HELLO v2\nSUBSCRIBE every=1 ids=0..100000\n' >&6
read -r -u 6 fhello || fail "no filtered HELLO reply"
[[ "$fhello" == OK\ v2\ * ]] || fail "filtered HELLO reply: $fhello"
read -r -u 6 fsub || fail "no filtered SUBSCRIBE reply"
[[ "$fsub" == "OK subscribed every=1 filter=0..100000 epoch="* ]] \
    || fail "filtered SUBSCRIBE reply: $fsub"

# fd 4: the writer. BATCH gating before HELLO, then a one-ack batch.
exec 4<>"/dev/tcp/127.0.0.1/$PORT" || fail "writer connect"
printf 'BATCH 1\n' >&4
read -r -u 4 gate || fail "no gating reply"
[[ "$gate" == "ERR BATCH requires protocol v2"* ]] || fail "BATCH gating: $gate"
printf 'HELLO v2\nBATCH 3\nINSERT 200000 0.99 0.99 0.99\nINSERT 200001 0.98 0.98 0.98\nDELETE 200000\n' >&4
read -r -u 4 hello2 || fail "no writer HELLO reply"
[[ "$hello2" == OK\ v2\ * ]] || fail "writer HELLO: $hello2"
read -r -u 4 batch_ack || fail "no BATCH ack"
[[ "$batch_ack" == "OK queued n=3" ]] || fail "BATCH ack: $batch_ack"

# The subscriber must receive a pushed DELTA line without ever polling.
read -r -t 30 -u 3 delta || fail "no DELTA pushed within 30s"
[[ "$delta" == DELTA\ epoch=* ]] || fail "DELTA line: $delta"

# The filtered subscriber gets the same version as a header-only line:
# the batch's surviving insert (id 200001) is outside 0..100000, so the
# slice must not carry it.
read -r -t 30 -u 6 fdelta || fail "no filtered DELTA pushed within 30s"
[[ "$fdelta" == DELTA\ epoch=* ]] || fail "filtered DELTA line: $fdelta"
[[ "$fdelta" != *"200001"* ]] || fail "filter leaked out-of-range id: $fdelta"

# METRICS over the line protocol: a counted header frames the same
# exposition the HTTP endpoint serves. The fd-3 and fd-6 subscribers
# are live, so the subscriber gauge reads 2, DELTA bytes have been
# counted, and the reactor's encode counters show the encode-once
# split: one unfiltered + one filtered render per publish.
printf 'METRICS\n' >&4
read -r -t 30 -u 4 mhdr || fail "no METRICS reply"
[[ "$mhdr" == "OK metrics lines="* ]] || fail "METRICS header: $mhdr"
mlines=${mhdr##*lines=}
[ "$mlines" -gt 0 ] || fail "empty METRICS exposition"
mbody=""
for ((i = 0; i < mlines; i++)); do
    read -r -t 30 -u 4 mline || fail "METRICS body truncated at line $i of $mlines"
    mbody+="$mline"$'\n'
done
grep -q '^# TYPE rms_tcp_requests_total counter' <<<"$mbody" \
    || fail "METRICS verb exposition missing request family"
grep -q '^rms_tcp_subscribers 2$' <<<"$mbody" || fail "live subscriber gauge != 2"
grep -Eq '^rms_tcp_delta_bytes_total [1-9]' <<<"$mbody" || fail "DELTA bytes not counted"
grep -Eq '^rms_net_delta_encodes_total\{kind="unfiltered"\} [1-9]' <<<"$mbody" \
    || fail "unfiltered encode counter not moving"
grep -Eq '^rms_net_delta_encodes_total\{kind="filtered"\} [1-9]' <<<"$mbody" \
    || fail "filtered encode counter not moving"

printf 'SHUTDOWN\n' >&4
read -r -u 4 bye || fail "no SHUTDOWN reply"
[[ "$bye" == "OK shutting down" ]] || fail "SHUTDOWN reply: $bye"
exec 3<&- 3>&- 4<&- 4>&- 6<&- 6>&-
wait "$SERVE_PID" || { cat "$TMP/serve3.log" >&2; fail "v2 server exited non-zero"; }
SERVE_PID=""

echo "cli smoke: OK"
