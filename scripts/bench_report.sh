#!/usr/bin/env bash
# Runs the perf-gating benches (batch + serve) and assembles a
# machine-readable report, one labelled run per invocation:
#
#   scripts/bench_report.sh --label before                  # smoke + default
#   scripts/bench_report.sh --label after
#   scripts/bench_report.sh --label ci --scales smoke --out /tmp/ci.json
#
# The metrics-overhead comparison prices the rms-metrics instrumentation
# by running the same benches with the registry in its disabled (no-op
# instruments) mode:
#
#   scripts/bench_report.sh --label instrumented
#   scripts/bench_report.sh --label registry_disabled --metrics-disabled
#
# The report file is JSON of the shape
#   { "<label>": { "scales": { "<scale>": { "batch": {...}, "serve": {...} } } } }
# and an existing report is merged into, not clobbered — running with
# two labels yields the comparison document perf PRs check in as
# BENCH_<n>.json (BENCH_8.json pairs instrumented/registry_disabled;
# BENCH_10.json pairs before/after the evented network subsystem, whose
# serve run adds the `fanout` phase — encode-once delta fan-out under a
# subscriber swarm).
set -euo pipefail

cd "$(dirname "$0")/.."

label="run"
out="BENCH_8.json"
scales="smoke,default"
metrics_disabled=""
while [ $# -gt 0 ]; do
    case "$1" in
        --label) label="$2"; shift 2 ;;
        --out) out="$2"; shift 2 ;;
        --scales) scales="$2"; shift 2 ;;
        --metrics-disabled) metrics_disabled=1; shift ;;
        -h|--help)
            sed -n '2,19p' "$0"; exit 0 ;;
        *) echo "bench_report.sh: unknown argument $1" >&2; exit 2 ;;
    esac
done

if [ -n "$metrics_disabled" ]; then
    # rms-metrics registries constructed via Registry::from_env become
    # no-ops: registration still validates, every record is one branch.
    export KRMS_METRICS_DISABLED=1
fi

workdir="$(mktemp -d)"
trap 'rm -rf "$workdir"' EXIT

cargo build --release -p rms-bench --bins >&2

run_scale() {
    scale="$1"
    batch_json="$workdir/batch_$scale.json"
    serve_json="$workdir/serve_$scale.json"
    case "$scale" in
        smoke)
            # Sub-minute configuration: proves the report format and gives a
            # quick relative signal. Serve uses its built-in smoke profile.
            ./target/release/batch --n 400 --ops 200 --r 10 --max-m 256 \
                --json "$batch_json" >&2
            KRMS_BENCH_SMOKE=1 ./target/release/serve --json "$serve_json" >&2
            ;;
        default)
            # The bench binaries' default scale: the numbers PRs gate on.
            ./target/release/batch --json "$batch_json" >&2
            ./target/release/serve --json "$serve_json" >&2
            ;;
        *)
            echo "bench_report.sh: unknown scale $scale (smoke|default)" >&2
            exit 2
            ;;
    esac
    printf '{"batch":%s,"serve":%s}' "$(cat "$batch_json")" "$(cat "$serve_json")"
}

IFS=',' read -r -a scale_list <<< "$scales"
scales_json="{"
first=1
for scale in "${scale_list[@]}"; do
    echo "=== bench_report: scale=$scale ===" >&2
    fragment="$(run_scale "$scale")"
    [ "$first" = 1 ] || scales_json="$scales_json,"
    scales_json="$scales_json\"$scale\":$fragment"
    first=0
done
scales_json="$scales_json}"
run_json="{\"scales\":$scales_json}"

# Merge into the existing report (or create it) under the label key.
merged="$workdir/merged.json"
if command -v jq >/dev/null 2>&1; then
    base="{}"
    [ -s "$out" ] && base="$(cat "$out")"
    printf '%s' "$base" | jq --arg lbl "$label" --argjson run "$run_json" \
        '.[$lbl] = $run' > "$merged"
elif command -v python3 >/dev/null 2>&1; then
    RUN_JSON="$run_json" OUT="$out" LABEL="$label" python3 - > "$merged" <<'EOF'
import json, os
out, label = os.environ["OUT"], os.environ["LABEL"]
doc = {}
if os.path.exists(out) and os.path.getsize(out) > 0:
    with open(out) as f:
        doc = json.load(f)
doc[label] = json.loads(os.environ["RUN_JSON"])
print(json.dumps(doc, indent=2))
EOF
else
    echo "bench_report.sh: need jq or python3 to merge reports" >&2
    exit 2
fi
mv "$merged" "$out"
echo "bench_report: wrote label '$label' to $out" >&2
