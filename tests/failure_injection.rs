//! Failure injection and edge-case integration tests: invalid inputs must
//! be rejected loudly and never corrupt maintained state.

use krms::prelude::*;
use rand::{rngs::StdRng, SeedableRng};

fn small_db(n: usize, d: usize) -> Vec<Point> {
    let mut rng = StdRng::seed_from_u64(99);
    krms::data::generators::independent(&mut rng, n, d)
}

#[test]
fn invalid_points_rejected_at_construction() {
    assert!(Point::new(0, vec![f64::NAN]).is_err());
    assert!(Point::new(0, vec![-0.1, 0.5]).is_err());
    assert!(Point::new(0, vec![f64::INFINITY, 0.0]).is_err());
    assert!(Point::new(0, vec![]).is_err());
    assert!(Utility::new(vec![0.0, 0.0]).is_err());
    assert!(Utility::new(vec![-1.0, 2.0]).is_err());
}

#[test]
fn fdrms_rejects_and_recovers_from_bad_ops() {
    let db = small_db(100, 3);
    let mut fd = FdRms::builder(3)
        .r(4)
        .max_utilities(128)
        .build(db.clone())
        .unwrap();
    let before = fd.result_ids();

    // Duplicate insert, unknown delete, wrong dimension: all rejected.
    assert!(fd.insert(db[0].clone()).is_err());
    assert!(fd.delete(123_456).is_err());
    assert!(fd.insert(Point::new(777, vec![0.1, 0.2]).unwrap()).is_err());

    // State must be untouched by the failed operations.
    assert_eq!(fd.result_ids(), before);
    assert_eq!(fd.len(), 100);
    fd.check_invariants().unwrap();

    // And future valid operations still work.
    fd.insert(Point::new(777, vec![0.9, 0.9, 0.9]).unwrap())
        .unwrap();
    fd.delete(777).unwrap();
    fd.check_invariants().unwrap();
}

#[test]
fn dynamic_skyline_rejects_bad_ops_without_corruption() {
    let db = small_db(50, 3);
    let mut sky = DynamicSkyline::new(db.clone()).unwrap();
    let len = sky.skyline_len();
    assert!(sky.insert(db[0].clone()).is_err());
    assert!(sky.delete(777).is_err());
    assert!(sky.insert(Point::new(777, vec![0.5]).unwrap()).is_err());
    assert_eq!(sky.skyline_len(), len);
    sky.check_invariants().unwrap();
}

#[test]
fn r_below_d_is_rejected() {
    let db = small_db(20, 4);
    assert!(matches!(
        FdRms::builder(4).r(3).build(db),
        Err(FdRmsError::InvalidParameter(_))
    ));
}

#[test]
fn duplicate_ids_in_initial_database_rejected() {
    let mut db = small_db(10, 2);
    db.push(db[0].clone());
    assert!(matches!(
        FdRms::builder(2).r(2).max_utilities(32).build(db),
        Err(FdRmsError::DuplicateId(_))
    ));
}

#[test]
fn degenerate_databases() {
    // All-identical tuples: top-k ties everywhere; must not panic and the
    // result must still cover (one tuple suffices).
    let db: Vec<Point> = (0..40)
        .map(|i| Point::new(i, vec![0.5, 0.5]).unwrap())
        .collect();
    let fd = FdRms::builder(2)
        .r(2)
        .max_utilities(64)
        .build(db.clone())
        .unwrap();
    assert!(!fd.result().is_empty());
    let est = RegretEstimator::new(2, 2_000, 1);
    assert!(est.mrr(&db, &fd.result(), 1) < 1e-9);

    // Axis-degenerate data (one constant dimension).
    let db: Vec<Point> = (0..40)
        .map(|i| Point::new(i, vec![i as f64 / 40.0, 1.0]).unwrap())
        .collect();
    let fd = FdRms::builder(2).r(2).max_utilities(64).build(db).unwrap();
    assert!(!fd.result().is_empty());
}

#[test]
fn single_tuple_database() {
    let db = vec![Point::new(0, vec![0.3, 0.7, 0.2]).unwrap()];
    let mut fd = FdRms::builder(3)
        .r(3)
        .max_utilities(32)
        .build(db.clone())
        .unwrap();
    assert_eq!(fd.result().len(), 1);
    fd.delete(0).unwrap();
    assert!(fd.result().is_empty());
    fd.insert(db[0].clone()).unwrap();
    assert_eq!(fd.result().len(), 1);
    fd.check_invariants().unwrap();
}

#[test]
fn zero_coordinate_tuples() {
    // The origin point scores 0 under every utility — legal but useless.
    let mut db = small_db(30, 2);
    db.push(Point::new(9_999, vec![0.0, 0.0]).unwrap());
    let fd = FdRms::builder(2)
        .r(3)
        .max_utilities(64)
        .build(db.clone())
        .unwrap();
    fd.check_invariants().unwrap();
    assert!(fd.result().iter().all(|p| p.id() != 9_999));
}

#[test]
fn workload_respects_delete_validity_under_stress() {
    // Paper workload generator must never emit a delete for a dead tuple,
    // even at extreme fractions.
    use krms::data::{paper_workload, WorkloadConfig};
    let mut rng = StdRng::seed_from_u64(5);
    for (init, del) in [(0.0, 1.0), (1.0, 1.0), (0.1, 0.9)] {
        let w = paper_workload(
            &mut rng,
            small_db(60, 2),
            WorkloadConfig {
                initial_fraction: init,
                delete_fraction: del,
                checkpoints: 5,
            },
        );
        let _ = w.final_state(); // panics internally if a delete is invalid
    }
}
