//! End-to-end integration: data generation → skyline → FD-RMS → baselines
//! → regret evaluation, across crate boundaries.

use krms::baselines::{DynamicAdapter, HittingSet, Sphere, StaticRms};
use krms::data::{paper_workload, NamedDataset, Operation, WorkloadConfig};
use krms::prelude::*;
use rand::{rngs::StdRng, SeedableRng};

/// FD-RMS processes a full paper workload (inserts then deletes) on a
/// scaled-down named dataset and produces checkpointed results of bounded
/// size and sane quality throughout.
#[test]
fn fdrms_full_paper_workload() {
    let spec = NamedDataset::Indep.spec().with_n(1_200).with_d(4);
    let points = spec.generate();
    let mut rng = StdRng::seed_from_u64(1);
    let workload = paper_workload(&mut rng, points, WorkloadConfig::default());

    let r = 10;
    let mut fd = FdRms::builder(4)
        .r(r)
        .epsilon(0.03)
        .max_utilities(1 << 10)
        .build(workload.initial.clone())
        .unwrap();
    let est = RegretEstimator::new(4, 5_000, 3);

    let mut live = workload.initial.clone();
    let mut next_cp = 0;
    for (i, op) in workload.operations.iter().enumerate() {
        match op {
            Operation::Insert(p) => {
                live.push(p.clone());
                fd.insert(p.clone()).unwrap();
            }
            Operation::Delete(id) => {
                live.retain(|q| q.id() != *id);
                fd.delete(*id).unwrap();
            }
            Operation::Update(p) => {
                if let Some(slot) = live.iter_mut().find(|q| q.id() == p.id()) {
                    *slot = p.clone();
                }
                fd.update(p.clone()).unwrap();
            }
        }
        if next_cp < workload.checkpoints.len() && workload.checkpoints[next_cp] == i {
            next_cp += 1;
            let q = fd.result();
            assert!(q.len() <= r, "checkpoint {next_cp}: |Q| = {}", q.len());
            assert!(!q.is_empty());
            let mrr = est.mrr(&live, &q, 1);
            assert!(mrr < 0.25, "checkpoint {next_cp}: mrr = {mrr}");
        }
    }
    assert_eq!(next_cp, 10, "all checkpoints visited");
    assert_eq!(fd.len(), live.len());
}

/// The maintained FD-RMS result never falls far behind a from-scratch
/// rebuild at any checkpoint (the paper's central claim: dynamic
/// maintenance ≈ static recomputation, minus the cost).
#[test]
fn fdrms_tracks_from_scratch_rebuild() {
    let spec = NamedDataset::AntiCor.spec().with_n(600).with_d(3);
    let points = spec.generate();
    let mut rng = StdRng::seed_from_u64(2);
    let workload = paper_workload(&mut rng, points, WorkloadConfig::default());

    let mut fd = FdRms::builder(3)
        .r(8)
        .epsilon(0.05)
        .max_utilities(512)
        .seed(11)
        .build(workload.initial.clone())
        .unwrap();
    let est = RegretEstimator::new(3, 5_000, 5);

    let mut live = workload.initial.clone();
    for (i, op) in workload.operations.iter().enumerate() {
        match op {
            Operation::Insert(p) => {
                live.push(p.clone());
                fd.insert(p.clone()).unwrap();
            }
            Operation::Delete(id) => {
                live.retain(|q| q.id() != *id);
                fd.delete(*id).unwrap();
            }
            Operation::Update(p) => {
                if let Some(slot) = live.iter_mut().find(|q| q.id() == p.id()) {
                    *slot = p.clone();
                }
                fd.update(p.clone()).unwrap();
            }
        }
        if i == workload.operations.len() / 2 || i + 1 == workload.operations.len() {
            let rebuilt = FdRms::builder(3)
                .r(8)
                .epsilon(0.05)
                .max_utilities(512)
                .seed(11)
                .build(live.clone())
                .unwrap();
            let m_dyn = est.mrr(&live, &fd.result(), 1);
            let m_reb = est.mrr(&live, &rebuilt.result(), 1);
            assert!(
                m_dyn <= m_reb + 0.12,
                "op {i}: maintained {m_dyn} vs rebuilt {m_reb}"
            );
        }
    }
}

/// FD-RMS and the static baselines agree on quality within the regime the
/// paper reports ("results of near-equal quality").
#[test]
fn fdrms_quality_close_to_static_baselines() {
    let spec = NamedDataset::Indep.spec().with_n(800).with_d(3);
    let points = spec.generate();
    let sky = skyline(&points);
    let est = RegretEstimator::new(3, 10_000, 7);
    let r = 10;

    let fd = FdRms::builder(3)
        .r(r)
        .epsilon(0.02)
        .max_utilities(1 << 11)
        .build(points.clone())
        .unwrap();
    let fd_mrr = est.mrr(&points, &fd.result(), 1);

    let sphere_mrr = est.mrr(&points, &Sphere::default().compute(&sky, &points, 1, r), 1);
    let hs_mrr = est.mrr(
        &points,
        &HittingSet::default().compute(&sky, &points, 1, r),
        1,
    );
    let best = sphere_mrr.min(hs_mrr);
    assert!(
        fd_mrr <= best + 0.05,
        "FD-RMS {fd_mrr} vs best static {best}"
    );
}

/// The dynamic adapter and FD-RMS see identical databases through a mixed
/// workload and both respect the size budget.
///
/// Kept deliberately small: the adapter re-runs Sphere from scratch on
/// every skyline change, which used to dominate the tier-1 wall-clock
/// (~100 s at n = 500 with 200 ops). 60 ops over n = 300 exercise the
/// same consistency contract — per-op length agreement, budget
/// compliance, liveness of both results — at a fraction of the cost.
#[test]
fn adapter_and_fdrms_stay_consistent() {
    let spec = NamedDataset::Bb.spec().with_n(300);
    let d = spec.d;
    let points = spec.generate();
    let mut rng = StdRng::seed_from_u64(4);
    let workload = paper_workload(&mut rng, points, WorkloadConfig::default());
    let r = d + 2;

    let mut fd = FdRms::builder(d)
        .r(r)
        .max_utilities(512)
        .build(workload.initial.clone())
        .unwrap();
    let mut ad = DynamicAdapter::new(Sphere::default(), 1, r, workload.initial.clone()).unwrap();

    for op in workload.operations.iter().take(60) {
        match op {
            Operation::Insert(p) => {
                fd.insert(p.clone()).unwrap();
                ad.insert(p.clone()).unwrap();
            }
            Operation::Delete(id) => {
                fd.delete(*id).unwrap();
                ad.delete(*id).unwrap();
            }
            Operation::Update(p) => {
                fd.update(p.clone()).unwrap();
                ad.delete(p.id()).unwrap();
                ad.insert(p.clone()).unwrap();
            }
        }
        assert_eq!(fd.len(), ad.len());
        assert!(fd.result().len() <= r);
        assert!(ad.result().len() <= r);
    }
    // Both results consist of live tuples only.
    for p in fd.result() {
        assert!(fd.contains(p.id()));
    }
    for p in ad.result() {
        assert!(fd.contains(p.id()));
    }
}

/// Batch pipeline end to end: dataset generation → mixed insert/delete/
/// update workload → batch chunking → the FD-RMS batch engine → regret
/// evaluation. The batched run must stay invariant-clean and deliver the
/// same quality regime as per-op maintenance on the identical stream.
#[test]
fn batched_workload_end_to_end() {
    let spec = NamedDataset::Indep.spec().with_n(700).with_d(3);
    let points = spec.generate();
    let mut rng = StdRng::seed_from_u64(6);
    let cfg = krms::data::MixedConfig {
        ops: 500,
        ..Default::default()
    };
    let workload = krms::data::mixed_workload(&mut rng, points, cfg);
    let est = RegretEstimator::new(3, 5_000, 3);
    let r = 8;

    let build = || {
        FdRms::builder(3)
            .r(r)
            .epsilon(0.04)
            .max_utilities(512)
            .build(workload.initial.clone())
            .unwrap()
    };
    let mut batched = build();
    let mut reports = Vec::new();
    for batch in workload.batches(100) {
        reports.push(batched.apply_batch(engine_ops(batch)).unwrap());
    }
    batched.check_invariants().unwrap();

    let mut per_op = build();
    for op in &workload.operations {
        match op {
            Operation::Insert(p) => per_op.insert(p.clone()).unwrap(),
            Operation::Delete(id) => per_op.delete(*id).unwrap(),
            Operation::Update(p) => per_op.update(p.clone()).unwrap(),
        }
    }

    let live = workload.final_state();
    assert_eq!(batched.len(), live.len());
    assert_eq!(per_op.len(), live.len());
    assert_eq!(reports.iter().map(|rep| rep.ops).sum::<usize>(), 500);
    assert!(reports.iter().all(|rep| rep.result_size <= r));
    let q_batched = batched.result();
    assert!(!q_batched.is_empty() && q_batched.len() <= r);
    let mrr_batched = est.mrr(&live, &q_batched, 1);
    let mrr_per_op = est.mrr(&live, &per_op.result(), 1);
    assert!(
        mrr_batched <= mrr_per_op + 0.1,
        "batched {mrr_batched} vs per-op {mrr_per_op}"
    );
}

/// k > 1 path end to end: maintained result respects the k-regret metric.
#[test]
fn k_regret_end_to_end() {
    let spec = NamedDataset::Indep.spec().with_n(700).with_d(3);
    let points = spec.generate();
    let est = RegretEstimator::new(3, 5_000, 9);
    for k in [2, 3] {
        let mut fd = FdRms::builder(3)
            .k(k)
            .r(8)
            .epsilon(0.05)
            .max_utilities(512)
            .build(points.clone())
            .unwrap();
        // Apply a short burst of updates.
        let mut live = points.clone();
        for i in 0..60u64 {
            let p = Point::new(10_000 + i, vec![0.3 + (i as f64 % 7.0) / 10.0, 0.5, 0.4]).unwrap();
            live.push(p.clone());
            fd.insert(p).unwrap();
            live.retain(|q| q.id() != i);
            fd.delete(i).unwrap();
        }
        let mrr_k = est.mrr(&live, &fd.result(), k);
        let mrr_1 = est.mrr(&live, &fd.result(), 1);
        assert!(
            mrr_k <= mrr_1 + 1e-9,
            "k={k}: mrr_k {mrr_k} > mrr_1 {mrr_1}"
        );
        assert!(mrr_k < 0.3, "k={k}: mrr {mrr_k}");
    }
}

/// Normalisation + generation + skyline + facade re-exports compose.
#[test]
fn facade_composes() {
    let mut rng = StdRng::seed_from_u64(5);
    let raw: Vec<Point> = krms::data::generators::independent(&mut rng, 300, 3)
        .into_iter()
        .map(|p| {
            // Stretch into a non-unit range, then re-normalise.
            let c: Vec<f64> = p.coords().iter().map(|x| 10.0 + 90.0 * x).collect();
            Point::new(p.id(), c).unwrap()
        })
        .collect();
    let normed = krms::geom::normalize_to_unit_box(&raw).unwrap();
    assert!(normed
        .iter()
        .all(|p| p.coords().iter().all(|&c| (0.0..=1.0).contains(&c))));
    let sky = skyline(&normed);
    assert!(!sky.is_empty());
    let mut dyn_sky = DynamicSkyline::new(normed.clone()).unwrap();
    assert_eq!(dyn_sky.skyline_len(), sky.len());
    dyn_sky.delete(normed[0].id()).unwrap();
    assert_eq!(dyn_sky.len(), normed.len() - 1);
}
