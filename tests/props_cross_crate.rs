//! Cross-crate property tests: the theoretical guarantees of the paper,
//! checked on randomised inputs.

use krms::prelude::*;
use proptest::prelude::*;

fn arb_db(d: usize, n: std::ops::Range<usize>) -> impl Strategy<Value = Vec<Point>> {
    prop::collection::vec(prop::collection::vec(0.02f64..=1.0, d), n).prop_map(|rows| {
        rows.into_iter()
            .enumerate()
            .map(|(i, c)| Point::new(i as u64, c).unwrap())
            .collect()
    })
}

/// Raw operation intents: `(kind, pick, coords)` resolved against the
/// live-id set when the stream is materialised (so deletes and updates
/// always target live tuples).
fn arb_op_intents(
    d: usize,
    n: std::ops::Range<usize>,
) -> impl Strategy<Value = Vec<(u8, usize, Vec<f64>)>> {
    prop::collection::vec(
        (
            0u8..4,
            0usize..1_000,
            prop::collection::vec(0.02f64..=1.0, d),
        ),
        n,
    )
}

/// Materialises intents into a concrete op stream over the given initial
/// database: kind 0–1 insert a fresh tuple, 2 deletes a live tuple, 3
/// updates a live tuple (falling back to insert when nothing is live).
fn materialise_ops(db: &[Point], intents: &[(u8, usize, Vec<f64>)]) -> Vec<Op> {
    let mut live: Vec<PointId> = db.iter().map(Point::id).collect();
    let mut next: PointId = 100_000;
    let mut ops = Vec::with_capacity(intents.len());
    for (kind, pick, coords) in intents {
        match kind {
            2 if !live.is_empty() => {
                let idx = pick % live.len();
                ops.push(Op::Delete(live.swap_remove(idx)));
            }
            3 if !live.is_empty() => {
                let id = live[pick % live.len()];
                ops.push(Op::Update(Point::new(id, coords.clone()).unwrap()));
            }
            _ => {
                ops.push(Op::Insert(Point::new(next, coords.clone()).unwrap()));
                live.push(next);
                next += 1;
            }
        }
    }
    ops
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// |Q| ≤ r and Q ⊆ P always hold after construction.
    #[test]
    fn result_size_and_membership(db in arb_db(3, 5..80)) {
        let fd = FdRms::builder(3)
            .r(4)
            .max_utilities(64)
            .build(db.clone())
            .unwrap();
        let q = fd.result();
        prop_assert!(q.len() <= 4);
        for p in &q {
            prop_assert!(db.iter().any(|x| x.id() == p.id()));
        }
    }

    /// Basis coverage (the key step of Theorem 2's proof): the first d
    /// sampled utilities are the standard basis and are always in the
    /// universe (m ≥ r ≥ d), so for every dimension i the result must
    /// contain a tuple whose i-th coordinate is at least (1 − ε) times
    /// the k-th largest i-th coordinate in the database.
    #[test]
    fn basis_directions_are_covered(db in arb_db(3, 5..60)) {
        let eps = 0.01;
        let fd = FdRms::builder(3)
            .r(4)
            .epsilon(eps)
            .max_utilities(64)
            .build(db.clone())
            .unwrap();
        let q = fd.result();
        prop_assume!(!q.is_empty());
        for i in 0..3 {
            let mut coords: Vec<f64> = db.iter().map(|p| p.coord(i)).collect();
            coords.sort_by(|a, b| b.partial_cmp(a).unwrap());
            let omega_k = coords[0]; // k = 1
            let best_q = q.iter().map(|p| p.coord(i)).fold(0.0f64, f64::max);
            prop_assert!(
                best_q >= (1.0 - eps) * omega_k - 1e-9,
                "dim {i}: best {best_q} < (1-eps)*{omega_k}"
            );
        }
    }

    /// Insert-then-delete of the same tuple is a no-op for the database
    /// and keeps all invariants.
    #[test]
    fn insert_delete_roundtrip(db in arb_db(2, 3..40), x in 0.02f64..1.0, y in 0.02f64..1.0) {
        let mut fd = FdRms::builder(2)
            .r(2)
            .max_utilities(48)
            .build(db.clone())
            .unwrap();
        let p = Point::new(50_000, vec![x, y]).unwrap();
        fd.insert(p).unwrap();
        fd.delete(50_000).unwrap();
        prop_assert_eq!(fd.len(), db.len());
        fd.check_invariants().map_err(TestCaseError::fail)?;
    }

    /// The Monte-Carlo mrr estimate of the FD-RMS result is bounded by the
    /// estimate of any singleton subset (adding tuples to Q helps).
    #[test]
    fn result_better_than_singletons(db in arb_db(3, 6..50)) {
        let fd = FdRms::builder(3)
            .r(4)
            .max_utilities(64)
            .build(db.clone())
            .unwrap();
        let q = fd.result();
        prop_assume!(!q.is_empty());
        let est = RegretEstimator::new(3, 500, 17);
        let full = est.mrr(&db, &q, 1);
        let single = est.mrr(&db, &q[..1], 1);
        prop_assert!(full <= single + 1e-9);
    }

    /// Static skyline of the generated data upper-bounds the FD-RMS result
    /// quality: the skyline has zero 1-regret, the result is within its ε
    /// envelope.
    #[test]
    fn skyline_zero_regret(db in arb_db(3, 3..50)) {
        let est = RegretEstimator::new(3, 400, 23);
        let sky = skyline(&db);
        prop_assert!(est.mrr(&db, &sky, 1) < 1e-9);
    }

    /// Batch-vs-sequential equivalence: for random op streams,
    /// `apply_batch(ops)` and the sequential per-op loop reach the same
    /// canonical maintenance state — identical databases, and identical
    /// per-utility top-k / τ / `Φ` membership systems, which is exactly
    /// what `check_invariants()` certifies against brute-force
    /// recomputation on both sides. The batched path is additionally
    /// deterministic: every shard count yields the identical solution.
    ///
    /// The two *solutions* (which stable cover of that canonical set
    /// system you hold) may legitimately differ between the disciplines:
    /// stable covers are not unique, and the paths take different
    /// stabilisation/UPDATE-M trajectories — both end stable with the
    /// Theorem-1 `O(log m)` guarantee and within the size budget, which
    /// is the equivalence the algorithm promises.
    #[test]
    fn batch_matches_sequential_per_op_loop(
        db in arb_db(3, 4..40),
        intents in arb_op_intents(3, 10..45),
    ) {
        let build = |threads: usize| {
            FdRms::builder(3)
                .r(4)
                .max_utilities(64)
                .seed(17)
                .batch_threads(threads)
                .build(db.clone())
                .unwrap()
        };
        let ops = materialise_ops(&db, &intents);

        // Sequential per-op loop (the classic Algorithm-3 path).
        let mut seq = build(1);
        for op in ops.clone() {
            match op {
                Op::Insert(p) => seq.insert(p).unwrap(),
                Op::Delete(id) => seq.delete(id).unwrap(),
                Op::Update(p) => seq.update(p).unwrap(),
            }
        }
        // One batch, two shard configurations.
        let mut bat_seq_shard = build(1);
        bat_seq_shard.apply_batch(ops.clone()).map_err(|e| {
            TestCaseError::fail(format!("single-shard batch failed: {e}"))
        })?;
        let mut bat_par_shard = build(4);
        bat_par_shard.apply_batch(ops).map_err(|e| {
            TestCaseError::fail(format!("multi-shard batch failed: {e}"))
        })?;

        // Canonical state identity (top-k, τ, memberships vs brute force).
        seq.check_invariants().map_err(TestCaseError::fail)?;
        bat_seq_shard.check_invariants().map_err(TestCaseError::fail)?;
        bat_par_shard.check_invariants().map_err(TestCaseError::fail)?;
        // Identical databases.
        prop_assert_eq!(seq.len(), bat_seq_shard.len());
        for q in seq.result() {
            prop_assert!(bat_seq_shard.contains(q.id()));
        }
        for q in bat_seq_shard.result() {
            prop_assert!(seq.contains(q.id()));
        }
        // Shard-count determinism of the batched solution.
        prop_assert_eq!(bat_seq_shard.result_ids(), bat_par_shard.result_ids());
        // Both disciplines respect the budget.
        prop_assert!(seq.result().len() <= 4);
        prop_assert!(bat_seq_shard.result().len() <= 4);
    }
}
