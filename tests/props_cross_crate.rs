//! Cross-crate property tests: the theoretical guarantees of the paper,
//! checked on randomised inputs.

use krms::prelude::*;
use proptest::prelude::*;

fn arb_db(d: usize, n: std::ops::Range<usize>) -> impl Strategy<Value = Vec<Point>> {
    prop::collection::vec(prop::collection::vec(0.02f64..=1.0, d), n).prop_map(|rows| {
        rows.into_iter()
            .enumerate()
            .map(|(i, c)| Point::new(i as u64, c).unwrap())
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// |Q| ≤ r and Q ⊆ P always hold after construction.
    #[test]
    fn result_size_and_membership(db in arb_db(3, 5..80)) {
        let fd = FdRms::builder(3)
            .r(4)
            .max_utilities(64)
            .build(db.clone())
            .unwrap();
        let q = fd.result();
        prop_assert!(q.len() <= 4);
        for p in &q {
            prop_assert!(db.iter().any(|x| x.id() == p.id()));
        }
    }

    /// Basis coverage (the key step of Theorem 2's proof): the first d
    /// sampled utilities are the standard basis and are always in the
    /// universe (m ≥ r ≥ d), so for every dimension i the result must
    /// contain a tuple whose i-th coordinate is at least (1 − ε) times
    /// the k-th largest i-th coordinate in the database.
    #[test]
    fn basis_directions_are_covered(db in arb_db(3, 5..60)) {
        let eps = 0.01;
        let fd = FdRms::builder(3)
            .r(4)
            .epsilon(eps)
            .max_utilities(64)
            .build(db.clone())
            .unwrap();
        let q = fd.result();
        prop_assume!(!q.is_empty());
        for i in 0..3 {
            let mut coords: Vec<f64> = db.iter().map(|p| p.coord(i)).collect();
            coords.sort_by(|a, b| b.partial_cmp(a).unwrap());
            let omega_k = coords[0]; // k = 1
            let best_q = q.iter().map(|p| p.coord(i)).fold(0.0f64, f64::max);
            prop_assert!(
                best_q >= (1.0 - eps) * omega_k - 1e-9,
                "dim {i}: best {best_q} < (1-eps)*{omega_k}"
            );
        }
    }

    /// Insert-then-delete of the same tuple is a no-op for the database
    /// and keeps all invariants.
    #[test]
    fn insert_delete_roundtrip(db in arb_db(2, 3..40), x in 0.02f64..1.0, y in 0.02f64..1.0) {
        let mut fd = FdRms::builder(2)
            .r(2)
            .max_utilities(48)
            .build(db.clone())
            .unwrap();
        let p = Point::new(50_000, vec![x, y]).unwrap();
        fd.insert(p).unwrap();
        fd.delete(50_000).unwrap();
        prop_assert_eq!(fd.len(), db.len());
        fd.check_invariants().map_err(TestCaseError::fail)?;
    }

    /// The Monte-Carlo mrr estimate of the FD-RMS result is bounded by the
    /// estimate of any singleton subset (adding tuples to Q helps).
    #[test]
    fn result_better_than_singletons(db in arb_db(3, 6..50)) {
        let fd = FdRms::builder(3)
            .r(4)
            .max_utilities(64)
            .build(db.clone())
            .unwrap();
        let q = fd.result();
        prop_assume!(!q.is_empty());
        let est = RegretEstimator::new(3, 500, 17);
        let full = est.mrr(&db, &q, 1);
        let single = est.mrr(&db, &q[..1], 1);
        prop_assert!(full <= single + 1e-9);
    }

    /// Static skyline of the generated data upper-bounds the FD-RMS result
    /// quality: the skyline has zero 1-regret, the result is within its ε
    /// envelope.
    #[test]
    fn skyline_zero_regret(db in arb_db(3, 3..50)) {
        let est = RegretEstimator::new(3, 400, 23);
        let sky = skyline(&db);
        prop_assert!(est.mrr(&db, &sky, 1) < 1e-9);
    }
}
